#include "txn/transaction.h"

#include <cmath>

#include <gtest/gtest.h>

#include "sim/random.h"

namespace strip::txn {
namespace {

using Kind = Transaction::NextStep::Kind;

constexpr double kIps = 50e6;

Transaction::Params BaseParams() {
  Transaction::Params p;
  p.id = base::TxnId(1);
  p.cls = TxnClass::kHighValue;
  p.value = 2.0;
  p.arrival_time = 0.0;
  p.deadline = 1.0;
  p.computation_instructions = 6'000'000;  // 0.12 s at 50 MIPS
  p.p_view = 0.0;
  p.lookup_instructions = 4000;
  p.read_set = {{db::ObjectClass::kHighImportance, 3},
                {db::ObjectClass::kHighImportance, 7}};
  return p;
}

TEST(TransactionTest, AccessorsReflectParams) {
  const Transaction t(BaseParams());
  EXPECT_EQ(t.id().value(), 1u);
  EXPECT_EQ(t.cls(), TxnClass::kHighValue);
  EXPECT_DOUBLE_EQ(t.value(), 2.0);
  EXPECT_DOUBLE_EQ(t.deadline(), 1.0);
  EXPECT_EQ(t.read_set().size(), 2u);
  EXPECT_EQ(t.outcome(), TxnOutcome::kPending);
}

TEST(TransactionTest, TotalSecondsIncludesLookups) {
  const Transaction t(BaseParams());
  EXPECT_NEAR(t.TotalSeconds(kIps), (6'000'000 + 2 * 4000) / kIps, 1e-12);
}

TEST(TransactionTest, PViewZeroStartsWithReads) {
  Transaction t(BaseParams());
  const auto step = t.next_step();
  EXPECT_EQ(step.kind, Kind::kViewRead);
  EXPECT_DOUBLE_EQ(step.instructions, 4000);
  EXPECT_EQ(step.object.index, 3);
}

TEST(TransactionTest, FullTraversalPViewZero) {
  Transaction t(BaseParams());
  // read, read, work2, done.
  EXPECT_EQ(t.next_step().kind, Kind::kViewRead);
  t.CompleteStep();
  EXPECT_EQ(t.next_step().kind, Kind::kViewRead);
  EXPECT_EQ(t.next_step().object.index, 7);
  t.CompleteStep();
  const auto work = t.next_step();
  EXPECT_EQ(work.kind, Kind::kCompute);
  EXPECT_DOUBLE_EQ(work.instructions, 6'000'000);
  t.CompleteStep();
  EXPECT_EQ(t.next_step().kind, Kind::kDone);
  EXPECT_TRUE(t.finished());
}

TEST(TransactionTest, FullTraversalPViewHalf) {
  Transaction::Params p = BaseParams();
  p.p_view = 0.5;
  Transaction t(p);
  const auto work1 = t.next_step();
  EXPECT_EQ(work1.kind, Kind::kCompute);
  EXPECT_DOUBLE_EQ(work1.instructions, 3'000'000);
  t.CompleteStep();
  t.CompleteStep();  // read 1
  t.CompleteStep();  // read 2
  const auto work2 = t.next_step();
  EXPECT_EQ(work2.kind, Kind::kCompute);
  EXPECT_DOUBLE_EQ(work2.instructions, 3'000'000);
  t.CompleteStep();
  EXPECT_TRUE(t.finished());
}

TEST(TransactionTest, PViewOneReadsLast) {
  Transaction::Params p = BaseParams();
  p.p_view = 1.0;
  Transaction t(p);
  EXPECT_EQ(t.next_step().kind, Kind::kCompute);
  t.CompleteStep();
  EXPECT_EQ(t.next_step().kind, Kind::kViewRead);
  t.CompleteStep();
  t.CompleteStep();
  // No work2 (all computation was up front).
  EXPECT_TRUE(t.finished());
}

TEST(TransactionTest, NoReads) {
  Transaction::Params p = BaseParams();
  p.read_set.clear();
  Transaction t(p);
  EXPECT_EQ(t.next_step().kind, Kind::kCompute);
  t.CompleteStep();
  EXPECT_TRUE(t.finished());
}

TEST(TransactionTest, ZeroWorkTransactionIsBornFinished) {
  Transaction::Params p = BaseParams();
  p.computation_instructions = 0;
  p.read_set.clear();
  Transaction t(p);
  EXPECT_EQ(t.next_step().kind, Kind::kDone);
  EXPECT_TRUE(t.finished());
  EXPECT_DOUBLE_EQ(t.remaining_base_instructions(), 0.0);
}

TEST(TransactionTest, ChargePartialReducesCurrentStep) {
  Transaction t(BaseParams());
  t.ChargePartial(1000);
  EXPECT_DOUBLE_EQ(t.next_step().instructions, 3000);
  t.ChargePartial(3000);
  EXPECT_DOUBLE_EQ(t.next_step().instructions, 0);
  EXPECT_EQ(t.next_step().kind, Kind::kViewRead);  // not auto-completed
}

TEST(TransactionTest, RemainingBaseInstructionsCountsFuturePhases) {
  Transaction::Params p = BaseParams();
  p.p_view = 0.5;
  Transaction t(p);
  EXPECT_DOUBLE_EQ(t.remaining_base_instructions(), 6'000'000 + 8000);
  t.ChargePartial(1'000'000);
  EXPECT_DOUBLE_EQ(t.remaining_base_instructions(), 5'000'000 + 8000);
  t.CompleteStep();  // work1 done
  EXPECT_DOUBLE_EQ(t.remaining_base_instructions(), 3'000'000 + 8000);
  t.CompleteStep();  // read 1 done
  EXPECT_DOUBLE_EQ(t.remaining_base_instructions(), 3'000'000 + 4000);
}

TEST(TransactionTest, ExtraStepsRunBeforeBasePlan) {
  Transaction t(BaseParams());
  t.CompleteStep();  // first read done
  t.PushExtraStep({Kind::kOdScan, 5000, t.read_set()[0]});
  t.PushExtraStep({Kind::kOdApply, 20000, t.read_set()[0]});
  EXPECT_EQ(t.next_step().kind, Kind::kOdScan);
  EXPECT_DOUBLE_EQ(t.next_step().instructions, 5000);
  t.CompleteStep();
  EXPECT_EQ(t.next_step().kind, Kind::kOdApply);
  t.CompleteStep();
  EXPECT_EQ(t.next_step().kind, Kind::kViewRead);  // base plan resumes
}

TEST(TransactionTest, ExtraStepsExcludedFromBaseRemaining) {
  Transaction t(BaseParams());
  const double before = t.remaining_base_instructions();
  t.PushExtraStep({Kind::kOdScan, 999999, t.read_set()[0]});
  EXPECT_DOUBLE_EQ(t.remaining_base_instructions(), before);
  EXPECT_FALSE(t.finished());
}

TEST(TransactionTest, ChargePartialHitsExtraStepFirst) {
  Transaction t(BaseParams());
  t.PushExtraStep({Kind::kOdScan, 5000, t.read_set()[0]});
  t.ChargePartial(2000);
  EXPECT_DOUBLE_EQ(t.next_step().instructions, 3000);
  // The base read is untouched.
  t.CompleteStep();
  EXPECT_DOUBLE_EQ(t.next_step().instructions, 4000);
}

TEST(TransactionTest, ValueDensityIsValueOverRemainingTime) {
  Transaction t(BaseParams());
  const double remaining_seconds = (6'000'000 + 8000) / kIps;
  EXPECT_NEAR(t.ValueDensity(kIps), 2.0 / remaining_seconds, 1e-9);
}

TEST(TransactionTest, FinishedTransactionHasInfiniteDensity) {
  Transaction::Params p = BaseParams();
  p.computation_instructions = 0;
  p.read_set.clear();
  Transaction t(p);
  EXPECT_TRUE(std::isinf(t.ValueDensity(kIps)));
}

TEST(TransactionTest, FeasibilityAgainstDeadline) {
  Transaction t(BaseParams());  // needs ~0.12016 s, deadline 1.0
  EXPECT_TRUE(t.FeasibleAt(0.0, kIps));
  EXPECT_TRUE(t.FeasibleAt(0.87, kIps));
  EXPECT_FALSE(t.FeasibleAt(0.95, kIps));
}

TEST(TransactionTest, StaleReadBookkeeping) {
  Transaction t(BaseParams());
  EXPECT_FALSE(t.read_stale_data());
  t.MarkStaleRead();
  t.MarkStaleRead();
  EXPECT_TRUE(t.read_stale_data());
  EXPECT_EQ(t.stale_reads(), 2u);
}

TEST(TransactionTest, OutcomeAndCompletionTime) {
  Transaction t(BaseParams());
  t.set_outcome(TxnOutcome::kCommitted);
  t.set_completion_time(0.5);
  EXPECT_EQ(t.outcome(), TxnOutcome::kCommitted);
  EXPECT_DOUBLE_EQ(t.completion_time(), 0.5);
}

TEST(TransactionTest, OutcomeNames) {
  EXPECT_STREQ(TxnOutcomeName(TxnOutcome::kPending), "pending");
  EXPECT_STREQ(TxnOutcomeName(TxnOutcome::kCommitted), "committed");
  EXPECT_STREQ(TxnOutcomeName(TxnOutcome::kMissedDeadline),
               "missed-deadline");
  EXPECT_STREQ(TxnOutcomeName(TxnOutcome::kInfeasible), "infeasible");
  EXPECT_STREQ(TxnOutcomeName(TxnOutcome::kStaleAbort), "stale-abort");
  EXPECT_STREQ(TxnClassName(TxnClass::kLowValue), "low");
  EXPECT_STREQ(TxnClassName(TxnClass::kHighValue), "high");
}

// Property test: for random plans, walking the step machine to
// completion visits every read exactly once, in order, and the step
// instructions sum to the base plan exactly — independent of where
// preemptions split the segments.
TEST(TransactionTest, RandomPlansConserveWorkAndVisitAllReads) {
  strip::sim::RandomStream random(base::RngSeed(33));
  for (int trial = 0; trial < 200; ++trial) {
    Transaction::Params p;
    p.id = base::TxnId(trial);
    p.value = 1.0;
    p.deadline = 1e9;
    p.computation_instructions = random.Uniform(0, 1e7);
    p.p_view = random.Uniform(0, 1);
    p.lookup_instructions = random.Uniform(0, 10000);
    const int reads = random.UniformInt(0, 6);
    for (int r = 0; r < reads; ++r) {
      p.read_set.push_back(
          {db::ObjectClass::kLowImportance, random.UniformInt(0, 9)});
    }
    Transaction t(p);
    const double plan = p.computation_instructions +
                        p.lookup_instructions * reads;
    EXPECT_NEAR(t.remaining_base_instructions(), plan, 1e-6);

    double executed = 0;
    std::vector<db::ObjectId> reads_seen;
    int guard = 0;
    while (!t.finished()) {
      ASSERT_LT(++guard, 1000);
      const auto step = t.next_step();
      ASSERT_NE(step.kind, Transaction::NextStep::Kind::kDone);
      // Sometimes preempt mid-step to exercise partial charging.
      if (step.instructions > 0 && random.WithProbability(0.4)) {
        const double part = step.instructions * random.Uniform(0, 1);
        t.ChargePartial(part);
        executed += part;
        continue;
      }
      executed += t.next_step().instructions;
      if (step.kind == Transaction::NextStep::Kind::kViewRead) {
        reads_seen.push_back(step.object);
      }
      t.CompleteStep();
    }
    EXPECT_NEAR(executed, plan, plan * 1e-12 + 1e-6) << "trial " << trial;
    EXPECT_EQ(reads_seen, p.read_set) << "trial " << trial;
    EXPECT_DOUBLE_EQ(t.remaining_base_instructions(), 0.0);
  }
}

TEST(TransactionDeathTest, InvalidUse) {
  Transaction t(BaseParams());
  EXPECT_DEATH(t.ChargePartial(-1), "negative");
  EXPECT_DEATH(t.ChargePartial(1e9), "overdrawn");
  EXPECT_DEATH(
      t.PushExtraStep({Kind::kCompute, 100, t.read_set()[0]}),
      "only OD steps");
  Transaction::Params p = BaseParams();
  p.p_view = 1.5;
  EXPECT_DEATH(Transaction bad(p), "p_view");
}

TEST(TransactionDeathTest, CompleteStepPastDoneDies) {
  Transaction::Params p = BaseParams();
  p.computation_instructions = 0;
  p.read_set.clear();
  Transaction t(p);
  EXPECT_DEATH(t.CompleteStep(), "finished");
}

}  // namespace
}  // namespace strip::txn
