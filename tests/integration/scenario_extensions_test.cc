// Hand-timed scenarios for the extension features: UU-criterion OD
// scans, scan-cost charging, the fixed-fraction scheduler's budget,
// partial updates, MA-arrival, and warm-up accounting. Companion to
// scenario_test.cc (which covers the paper-baseline machinery).

#include <gtest/gtest.h>

#include "core/observer.h"
#include "core/system.h"
#include "sim/simulator.h"

namespace strip::core {
namespace {

constexpr double kEps = 1e-9;

Config ScenarioConfig(PolicyKind policy) {
  Config config;
  config.policy = policy;
  config.external_workload = true;
  config.sim_seconds = 30.0;
  return config;
}

txn::Transaction::Params SimpleTxn(std::uint64_t id, sim::Time arrival,
                                   double comp_instructions,
                                   sim::Time deadline,
                                   std::vector<db::ObjectId> reads = {}) {
  txn::Transaction::Params p;
  p.id = base::TxnId(id);
  p.cls = txn::TxnClass::kLowValue;
  p.value = 1.0;
  p.arrival_time = arrival;
  p.deadline = deadline;
  p.computation_instructions = comp_instructions;
  p.lookup_instructions = 4000;
  p.read_set = std::move(reads);
  return p;
}

db::Update SimpleUpdate(std::uint64_t id, sim::Time arrival,
                        sim::Time generation, db::ObjectId object,
                        int attribute = -1) {
  db::Update u;
  u.id = base::UpdateId(id);
  u.object = object;
  u.attribute = attribute;
  u.arrival_time = arrival;
  u.generation_time = generation;
  u.value = 1.0;
  return u;
}

TEST(ScenarioExtensionsTest, UuScanChargedOnEveryRead) {
  // Under UU + OD every view read scans the queue at x_scan per
  // entry, even when the data is fresh.
  Config config = ScenarioConfig(PolicyKind::kOnDemand);
  config.staleness = db::StalenessCriterion::kUnappliedUpdate;
  config.x_scan = 50000;  // 1 ms per queued entry
  sim::Simulator sim;
  System system(&sim, config, base::RngSeed(1));

  // Park two updates for *other* objects in the queue: a transaction
  // keeps the CPU while they arrive, then a second transaction's read
  // must scan past both.
  sim.ScheduleAt(1.0, [&] {
    system.InjectTransaction(SimpleTxn(1, 1.0, 10'000'000, 5.0));
  });
  sim.ScheduleAt(1.01, [&] {
    system.InjectUpdate(SimpleUpdate(
        101, 1.01, 1.0, {db::ObjectClass::kLowImportance, 1}));
  });
  sim.ScheduleAt(1.02, [&] {
    system.InjectUpdate(SimpleUpdate(
        102, 1.02, 1.0, {db::ObjectClass::kLowImportance, 2}));
  });
  sim.ScheduleAt(1.1, [&] {
    system.InjectTransaction(SimpleTxn(
        2, 1.1, 6'000'000, 3.0, {{db::ObjectClass::kLowImportance, 5}}));
  });
  const RunMetrics m = system.Run();
  EXPECT_EQ(m.txns_committed, 2u);
  // txn2's single read scanned a 2-entry queue: 2 ms of update work
  // (the scan is charged to the update side, like OD installs). The
  // two parked updates are installed once the system goes idle,
  // adding 2 × 480 us.
  EXPECT_NEAR(m.cpu_update_seconds, 0.002 + 2 * 0.00048, 1e-6);
  // Fresh read: nothing newer was queued for low:5.
  EXPECT_EQ(m.txns_committed_fresh, 2u);
}

TEST(ScenarioExtensionsTest, UuOnDemandAppliesNewestQueuedValue) {
  Config config = ScenarioConfig(PolicyKind::kOnDemand);
  config.staleness = db::StalenessCriterion::kUnappliedUpdate;
  sim::Simulator sim;
  System system(&sim, config, base::RngSeed(1));
  const db::ObjectId object{db::ObjectClass::kLowImportance, 5};

  sim.ScheduleAt(1.0, [&] {
    system.InjectTransaction(SimpleTxn(1, 1.0, 10'000'000, 5.0));
  });
  // Two updates for the same object arrive while the CPU is held; the
  // on-demand fetch must install the newest.
  sim.ScheduleAt(1.01, [&] {
    system.InjectUpdate(SimpleUpdate(101, 1.01, 0.90, object));
  });
  sim.ScheduleAt(1.02, [&] {
    system.InjectUpdate(SimpleUpdate(102, 1.02, 0.95, object));
  });
  sim.ScheduleAt(1.05, [&] {
    system.InjectTransaction(SimpleTxn(2, 1.05, 6'000'000, 3.0, {object}));
  });
  const RunMetrics m = system.Run();
  EXPECT_EQ(m.updates_applied_on_demand, 1u);
  EXPECT_EQ(m.txns_committed_fresh, 2u);
  EXPECT_DOUBLE_EQ(system.database().generation_time(object), 0.95);
}

TEST(ScenarioExtensionsTest, MaArrivalKeepsLateDeliveredValueFresh) {
  Config config = ScenarioConfig(PolicyKind::kUpdateFirst);
  config.staleness = db::StalenessCriterion::kMaxAgeArrival;
  sim::Simulator sim;
  System system(&sim, config, base::RngSeed(1));
  const db::ObjectId object{db::ObjectClass::kHighImportance, 3};

  // A value generated at t=1 but delivered at t=9: under generation-MA
  // a read at t=10 would be stale (age 9 > 7); under arrival-MA it is
  // fresh until t=16.
  sim.ScheduleAt(9.0, [&] {
    system.InjectUpdate(SimpleUpdate(1, 9.0, 1.0, object));
  });
  txn::Transaction::Params reader =
      SimpleTxn(1, 10.0, 1'000'000, 11.0, {object});
  reader.cls = txn::TxnClass::kHighValue;
  sim.ScheduleAt(10.0, [&] { system.InjectTransaction(reader); });
  const RunMetrics m = system.Run();
  EXPECT_EQ(m.txns_committed_fresh, 1u);
  EXPECT_EQ(m.txns_committed_stale, 0u);
}

TEST(ScenarioExtensionsTest, FixedFractionInstallsAheadOfTransactions) {
  Config config = ScenarioConfig(PolicyKind::kFixedFraction);
  config.update_cpu_fraction = 0.5;
  sim::Simulator sim;
  System system(&sim, config, base::RngSeed(1));

  // Updates queued behind a transaction backlog: with a 50% share the
  // updater runs between transactions even though more are waiting.
  for (int i = 0; i < 3; ++i) {
    sim.ScheduleAt(1.0, [&, i] {
      system.InjectTransaction(
          SimpleTxn(1 + i, 1.0, 10'000'000, 10.0));
    });
  }
  sim.ScheduleAt(1.05, [&] {
    system.InjectUpdate(SimpleUpdate(
        100, 1.05, 1.0, {db::ObjectClass::kLowImportance, 1}));
  });
  const RunMetrics m = system.Run();
  EXPECT_EQ(m.updates_installed, 1u);
  EXPECT_EQ(m.txns_committed, 3u);
  // The install completed before the last transaction finished: under
  // TF it would have waited for an idle system at 1.6+.
  // (Install must land between the first txn completion at 1.2 and
  // the second at 1.4.)
  // Verified indirectly: the updater consumed its work despite a
  // non-empty ready queue throughout [1.0, 1.6].
  EXPECT_NEAR(m.cpu_update_seconds, 0.00048, kEps);
}

TEST(ScenarioExtensionsTest, PartialUpdateFreshensOnlyItsAttribute) {
  Config config = ScenarioConfig(PolicyKind::kUpdateFirst);
  config.n_attributes = 2;
  config.abort_on_stale = false;
  sim::Simulator sim;
  System system(&sim, config, base::RngSeed(1));
  const db::ObjectId object{db::ObjectClass::kLowImportance, 4};

  // Refresh attribute 0 at t=8; attribute 1 still carries generation
  // 0, so the *object* stays stale (oldest attribute rule) and a read
  // at t=8.5 is stale.
  sim.ScheduleAt(8.0, [&] {
    system.InjectUpdate(SimpleUpdate(1, 8.0, 7.9, object, /*attribute=*/0));
  });
  sim.ScheduleAt(8.5, [&] {
    system.InjectTransaction(SimpleTxn(1, 8.5, 1'000'000, 9.5, {object}));
  });
  // Then refresh attribute 1; a read at t=9.5 sees a fresh object
  // (oldest attribute now 7.9, age 1.6 < 7).
  sim.ScheduleAt(9.0, [&] {
    system.InjectUpdate(SimpleUpdate(2, 9.0, 8.9, object, /*attribute=*/1));
  });
  sim.ScheduleAt(9.5, [&] {
    system.InjectTransaction(SimpleTxn(2, 9.5, 1'000'000, 10.5, {object}));
  });
  const RunMetrics m = system.Run();
  EXPECT_EQ(m.txns_committed, 2u);
  EXPECT_EQ(m.txns_committed_stale, 1u);
  EXPECT_EQ(m.txns_committed_fresh, 1u);
  EXPECT_DOUBLE_EQ(system.database().generation_time(object), 7.9);
}

TEST(ScenarioExtensionsTest, WarmupExcludesEarlyWork) {
  Config config = ScenarioConfig(PolicyKind::kTransactionFirst);
  config.warmup_seconds = 5.0;
  config.sim_seconds = 10.0;
  sim::Simulator sim;
  System system(&sim, config, base::RngSeed(1));
  // One transaction entirely inside the warm-up, one after it.
  sim.ScheduleAt(1.0, [&] {
    system.InjectTransaction(SimpleTxn(1, 1.0, 6'000'000, 2.0));
  });
  sim.ScheduleAt(6.0, [&] {
    system.InjectTransaction(SimpleTxn(2, 6.0, 6'000'000, 7.0));
  });
  const RunMetrics m = system.Run();
  EXPECT_DOUBLE_EQ(m.observed_seconds, 5.0);
  EXPECT_EQ(m.txns_arrived, 1u);
  EXPECT_EQ(m.txns_committed, 1u);
  EXPECT_NEAR(m.cpu_txn_seconds, 0.12, kEps);
  EXPECT_DOUBLE_EQ(m.value_committed, 1.0);
}

TEST(ScenarioExtensionsTest, SegmentSpanningWarmupIsSplitCharged) {
  Config config = ScenarioConfig(PolicyKind::kTransactionFirst);
  config.warmup_seconds = 5.0;
  config.sim_seconds = 10.0;
  sim::Simulator sim;
  System system(&sim, config, base::RngSeed(1));
  // Runs 4.95 -> 5.07: only the 0.07 s after the warm-up boundary is
  // charged to the observed window.
  sim.ScheduleAt(4.95, [&] {
    system.InjectTransaction(SimpleTxn(1, 4.95, 6'000'000, 6.0));
  });
  const RunMetrics m = system.Run();
  EXPECT_NEAR(m.cpu_txn_seconds, 0.07, kEps);
  // The commit itself lands after the warm-up and is counted.
  EXPECT_EQ(m.txns_committed, 1u);
}

TEST(ScenarioExtensionsTest, IndexedQueueScanIsConstantCost) {
  Config config = ScenarioConfig(PolicyKind::kOnDemand);
  config.staleness = db::StalenessCriterion::kUnappliedUpdate;
  config.x_scan = 50000;  // 1 ms
  config.indexed_update_queue = true;
  sim::Simulator sim;
  System system(&sim, config, base::RngSeed(1));
  sim.ScheduleAt(1.0, [&] {
    system.InjectTransaction(SimpleTxn(1, 1.0, 10'000'000, 5.0));
  });
  for (int i = 0; i < 5; ++i) {
    sim.ScheduleAt(1.01 + 0.001 * i, [&, i] {
      system.InjectUpdate(SimpleUpdate(
          100 + i, 1.01, 1.0, {db::ObjectClass::kLowImportance, 1 + i}));
    });
  }
  sim.ScheduleAt(1.1, [&] {
    system.InjectTransaction(SimpleTxn(
        2, 1.1, 6'000'000, 3.0, {{db::ObjectClass::kLowImportance, 9}}));
  });
  const RunMetrics m = system.Run();
  // One probe at 1 ms regardless of the 5 queued entries (a linear
  // scan would have cost 5 ms), plus the 5 eventual installs.
  EXPECT_NEAR(m.cpu_update_seconds, 0.001 + 5 * 0.00048, 1e-6);
  EXPECT_EQ(m.txns_committed, 2u);
}

// Captures terminal transactions and update events.
class MiniRecorder : public SystemObserver {
 public:
  struct Event {
    sim::Time time;
    std::uint64_t id;
    char kind;  // 'i' install, 'd' drop, 't' txn terminal
    int detail;
  };
  void OnTransactionTerminal(sim::Time now,
                             const txn::Transaction& t) override {
    events.push_back(
        {now, t.id().value(), 't', static_cast<int>(t.outcome())});
  }
  void OnUpdateInstalled(sim::Time now, const db::Update& u,
                         const txn::Transaction* on_demand_by) override {
    events.push_back({now, u.id.value(), 'i', on_demand_by != nullptr ? 1 : 0});
  }
  void OnUpdateDropped(sim::Time now, const db::Update& u,
                       DropReason reason) override {
    events.push_back({now, u.id.value(), 'd', static_cast<int>(reason)});
  }
  std::vector<Event> events;
};

TEST(ScenarioExtensionsTest, SplitUpdatesPreemptsOnlyForHighImportance) {
  sim::Simulator sim;
  System system(&sim, ScenarioConfig(PolicyKind::kSplitUpdates), base::RngSeed(1));
  MiniRecorder recorder;
  system.AddObserver(&recorder);

  sim.ScheduleAt(1.0, [&] {
    system.InjectTransaction(SimpleTxn(1, 1.0, 6'000'000, 3.0));
  });
  // A low-importance update must NOT preempt: it waits in the queue.
  sim.ScheduleAt(1.02, [&] {
    system.InjectUpdate(SimpleUpdate(
        101, 1.02, 1.0, {db::ObjectClass::kLowImportance, 1}));
  });
  // A high-importance update preempts and installs immediately.
  sim.ScheduleAt(1.04, [&] {
    system.InjectUpdate(SimpleUpdate(
        102, 1.04, 1.0, {db::ObjectClass::kHighImportance, 1}));
  });
  system.Run();

  // Install order: the high one first (at ~1.04), the low one only
  // after the transaction finishes.
  std::vector<MiniRecorder::Event> installs;
  for (const auto& e : recorder.events) {
    if (e.kind == 'i') installs.push_back(e);
  }
  ASSERT_EQ(installs.size(), 2u);
  EXPECT_EQ(installs[0].id, 102u);
  // The SU receive path transfers the queued low update first (free)
  // then installs the high one: 1.04 + 480us.
  EXPECT_NEAR(installs[0].time, 1.04 + 0.00048, kEps);
  EXPECT_EQ(installs[1].id, 101u);
  // The low update waits for the transaction: 1.0 + 0.12 + preemption
  // delay 0.00048, then installs.
  EXPECT_NEAR(installs[1].time, 1.0 + 0.12 + 0.00048 + 0.00048, kEps);
}

TEST(ScenarioExtensionsTest, AdmissionDropIsObservable) {
  Config config = ScenarioConfig(PolicyKind::kTransactionFirst);
  config.admission_limit = 1;
  sim::Simulator sim;
  System system(&sim, config, base::RngSeed(1));
  MiniRecorder recorder;
  system.AddObserver(&recorder);
  // txn1 runs; txn2 waits (ready size 1); txn3 is rejected.
  sim.ScheduleAt(1.0, [&] {
    system.InjectTransaction(SimpleTxn(1, 1.0, 10'000'000, 9.0));
  });
  sim.ScheduleAt(1.01, [&] {
    system.InjectTransaction(SimpleTxn(2, 1.01, 6'000'000, 9.0));
  });
  sim.ScheduleAt(1.02, [&] {
    system.InjectTransaction(SimpleTxn(3, 1.02, 6'000'000, 9.0));
  });
  const RunMetrics m = system.Run();
  EXPECT_EQ(m.txns_overload_dropped, 1u);
  EXPECT_EQ(m.txns_committed, 2u);
  bool saw_drop = false;
  for (const auto& e : recorder.events) {
    if (e.kind == 't' &&
        e.detail == static_cast<int>(txn::TxnOutcome::kOverloadDrop)) {
      saw_drop = true;
      EXPECT_EQ(e.id, 3u);
      EXPECT_NEAR(e.time, 1.02, kEps);
    }
  }
  EXPECT_TRUE(saw_drop);
}

TEST(ScenarioExtensionsTest, DedupDropsSupersededAtReceive) {
  Config config = ScenarioConfig(PolicyKind::kTransactionFirst);
  config.dedup_update_queue = true;
  sim::Simulator sim;
  System system(&sim, config, base::RngSeed(1));
  MiniRecorder recorder;
  system.AddObserver(&recorder);
  const db::ObjectId object{db::ObjectClass::kLowImportance, 5};

  // Three updates for one object arrive while a transaction runs; the
  // dedup hash table keeps only the newest (gen 1.2). Note the middle
  // one arrives *after* the newest — it is dropped on receive.
  sim.ScheduleAt(1.0, [&] {
    system.InjectTransaction(SimpleTxn(1, 1.0, 10'000'000, 9.0));
  });
  sim.ScheduleAt(1.01, [&] {
    system.InjectUpdate(SimpleUpdate(101, 1.01, 0.8, object));
  });
  sim.ScheduleAt(1.02, [&] {
    system.InjectUpdate(SimpleUpdate(102, 1.02, 1.2, object));
  });
  sim.ScheduleAt(1.03, [&] {
    system.InjectUpdate(SimpleUpdate(103, 1.03, 1.0, object));
  });
  const RunMetrics m = system.Run();
  EXPECT_EQ(m.updates_dropped_superseded, 2u);
  EXPECT_EQ(m.updates_installed, 1u);
  EXPECT_EQ(m.uq_length_max, 1u);
  std::uint64_t installed_id = 0;
  for (const auto& e : recorder.events) {
    if (e.kind == 'i') installed_id = e.id;
  }
  EXPECT_EQ(installed_id, 102u);
  EXPECT_DOUBLE_EQ(system.database().generation_time(object), 1.2);
}

TEST(ScenarioExtensionsTest, UfBurstOverflowsTinyOsQueue) {
  Config config = ScenarioConfig(PolicyKind::kUpdateFirst);
  config.os_max = 2;
  sim::Simulator sim;
  System system(&sim, config, base::RngSeed(1));
  // Five updates at the same instant: the first starts installing,
  // two wait in the OS buffer, two are dropped at the door.
  for (int i = 0; i < 5; ++i) {
    sim.ScheduleAt(1.0, [&, i] {
      system.InjectUpdate(SimpleUpdate(
          100 + i, 1.0, 0.9, {db::ObjectClass::kLowImportance, i}));
    });
  }
  const RunMetrics m = system.Run();
  EXPECT_EQ(m.updates_dropped_os_full, 2u);
  EXPECT_EQ(m.updates_installed, 3u);
}

TEST(ScenarioExtensionsTest, QueuedUpdateExpiresUnderMa) {
  sim::Simulator sim;
  System system(&sim, ScenarioConfig(PolicyKind::kTransactionFirst), base::RngSeed(1));
  MiniRecorder recorder;
  system.AddObserver(&recorder);
  // The update (generation 0.9) is received while a long transaction
  // holds the CPU until after 0.9 + alpha = 7.9: by the time the
  // updater could install it, it has expired.
  sim.ScheduleAt(1.0, [&] {
    system.InjectTransaction(
        SimpleTxn(1, 1.0, 400'000'000, 10.0));  // 8 s of work
  });
  sim.ScheduleAt(1.01, [&] {
    system.InjectUpdate(SimpleUpdate(
        101, 1.01, 0.9, {db::ObjectClass::kLowImportance, 1}));
  });
  const RunMetrics m = system.Run();
  EXPECT_EQ(m.updates_installed, 0u);
  EXPECT_EQ(m.updates_dropped_expired, 1u);
  bool saw_expiry = false;
  for (const auto& e : recorder.events) {
    if (e.kind == 'd' &&
        e.detail ==
            static_cast<int>(SystemObserver::DropReason::kExpired)) {
      saw_expiry = true;
      // Purged at the txn-completion scheduling point (t = 9.0), the
      // first instant the controller regains the CPU past 7.9.
      EXPECT_NEAR(e.time, 9.0, kEps);
    }
  }
  EXPECT_TRUE(saw_expiry);
}

}  // namespace
}  // namespace strip::core
