// Outage-recovery integration: a 5-second feed outage under the
// paper's baseline load, replayed at 4x catch-up speed, for the two
// policies that bracket the design space — UF (install everything
// eagerly) and OD (install only on demand). Pins time-to-fresh and
// the shed counts per importance class for a fixed seed, so any
// change to the fault layer, the shedding policy, or the scheduler's
// fault response shows up as a diff here.
//
// UF burns CPU on the catch-up burst immediately, so the database
// returns to its pre-outage staleness quickly; OD leaves the backlog
// in the queue until transactions demand the objects, so its
// time-to-fresh is far longer. The pinned numbers are the observed
// behavior of the current implementation (deterministic for the
// seed), not derived constants.

#include <gtest/gtest.h>

#include "core/config.h"
#include "core/metrics.h"
#include "exp/experiment.h"

namespace strip::core {
namespace {

Config OutageConfig(PolicyKind policy) {
  Config config;
  config.policy = policy;
  config.sim_seconds = 60;
  config.warmup_seconds = 0;
  config.uq_max = 256;
  config.shed_by_importance = true;
  config.faults = "outage@10+5:speedup=4";
  return config;
}

TEST(OutageRecoveryTest, UpdateFirstRecoversFast) {
  const RunMetrics m =
      exp::RunOnce(OutageConfig(PolicyKind::kUpdateFirst), 9);
  EXPECT_EQ(m.fault_windows, 1u);
  EXPECT_GT(m.updates_outage_deferred, 0u);
  ASSERT_GE(m.outage_recovery_seconds, 0.0) << "UF never returned to "
                                               "pre-outage staleness";
  // Pinned observed behavior (seed 9): recovery within a second of the
  // window closing, and shedding only of low-importance updates.
  EXPECT_NEAR(m.outage_recovery_seconds, 0.0, 1.5);
  EXPECT_EQ(m.updates_shed_by_class[1], 0u);
}

TEST(OutageRecoveryTest, OnDemandRecoversSlowly) {
  const RunMetrics m =
      exp::RunOnce(OutageConfig(PolicyKind::kOnDemand), 9);
  EXPECT_EQ(m.fault_windows, 1u);
  EXPECT_GT(m.updates_outage_deferred, 0u);
  const RunMetrics uf =
      exp::RunOnce(OutageConfig(PolicyKind::kUpdateFirst), 9);
  // OD installs only on demand: the backlog lingers, so either it
  // never returns to the pre-outage staleness level inside the run or
  // it takes far longer than UF.
  if (m.outage_recovery_seconds >= 0) {
    EXPECT_GT(m.outage_recovery_seconds,
              uf.outage_recovery_seconds * 2);
  }
  // And its bounded queue sheds aggressively during the catch-up.
  EXPECT_GT(m.updates_shed_by_class[0] + m.updates_shed_by_class[1], 0u);
}

TEST(OutageRecoveryTest, PinnedSeedNine) {
  // The full pinned cell for seed 9, both policies. These are
  // regression pins of observed values — update them deliberately
  // when the model changes, never casually.
  const RunMetrics uf =
      exp::RunOnce(OutageConfig(PolicyKind::kUpdateFirst), 9);
  const RunMetrics od =
      exp::RunOnce(OutageConfig(PolicyKind::kOnDemand), 9);
  EXPECT_EQ(uf.updates_outage_deferred, 2064u);
  EXPECT_EQ(od.updates_outage_deferred, 2064u);
  EXPECT_EQ(uf.updates_shed_by_class[0], 0u);
  EXPECT_EQ(od.updates_shed_by_class[0], 10224u);
  EXPECT_EQ(od.updates_shed_by_class[1], 5324u);
  EXPECT_NEAR(uf.outage_recovery_seconds, 1.093605, 1e-9);
  EXPECT_NEAR(uf.max_stale_excursion, 0.393, 1e-6);
  EXPECT_NEAR(od.max_stale_excursion, 0.935, 1e-6);
}

}  // namespace
}  // namespace strip::core
