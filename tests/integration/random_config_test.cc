// Robustness sweep: random-but-valid configurations.
//
// Draws configurations across the whole parameter space — policies,
// criteria, abort modes, costs, bounds, extensions — and asserts the
// model-independent invariants on every one: conservation laws, CPU
// bounds, metric ranges, and determinism. This is the net that
// catches interactions no targeted test thought to combine.

#include <gtest/gtest.h>

#include "exp/experiment.h"
#include "sim/random.h"

namespace strip {
namespace {

core::Config RandomConfig(sim::RandomStream& random) {
  core::Config config;
  config.sim_seconds = 8.0;

  config.policy = static_cast<core::PolicyKind>(random.UniformInt(0, 4));
  config.staleness =
      static_cast<db::StalenessCriterion>(random.UniformInt(0, 3));
  config.abort_on_stale = random.WithProbability(0.3);
  config.queue_discipline = random.WithProbability(0.5)
                                ? core::QueueDiscipline::kFifo
                                : core::QueueDiscipline::kLifo;
  config.txn_sched =
      static_cast<txn::TxnSchedPolicy>(random.UniformInt(0, 2));
  config.feasible_deadline = random.WithProbability(0.8);
  config.txn_preemption = random.WithProbability(0.2);

  config.lambda_u = random.Uniform(50, 600);
  config.p_ul = random.Uniform(0.05, 0.95);
  config.a_update = random.Uniform(0.01, 0.5);
  config.n_low = random.UniformInt(5, 800);
  config.n_high = random.UniformInt(5, 800);

  config.lambda_t = random.Uniform(0.5, 30);
  config.p_tl = random.Uniform(0.05, 0.95);
  config.s_min = random.Uniform(0.01, 0.3);
  config.s_max = config.s_min + random.Uniform(0.1, 2.0);
  config.reads_mean = random.Uniform(0, 5);
  config.reads_sd = random.Uniform(0, 2);
  config.alpha = random.Uniform(0.5, 12);
  config.comp_mean = random.Uniform(0.005, 0.3);
  config.comp_sd = config.comp_mean * random.Uniform(0, 0.2);
  config.p_view = random.Uniform(0, 1);

  config.x_lookup = random.Uniform(0, 20000);
  config.x_update = random.Uniform(0, 50000);
  config.x_switch = random.Uniform(0, 5000);
  config.x_queue = random.Uniform(0, 2000);
  config.x_scan = random.Uniform(0, 3000);
  config.os_max = random.UniformInt(4, 4000);
  config.uq_max = random.UniformInt(4, 5600);

  config.indexed_update_queue = random.WithProbability(0.3);
  config.split_importance_queues = random.WithProbability(0.3);
  config.update_cpu_fraction = random.Uniform(0, 1);
  config.periodic_updates = random.WithProbability(0.2);
  config.trigger_probability = random.Uniform(0, 0.5);
  config.x_trigger = random.Uniform(0, 30000);
  config.buffer_hit_ratio = random.Uniform(0.8, 1.0);
  config.io_seconds = random.Uniform(0, 0.002);
  config.history_depth = random.UniformInt(0, 4);
  config.n_attributes = random.UniformInt(1, 4);
  if (random.WithProbability(0.3) && !config.periodic_updates) {
    config.bursty_updates = true;
    config.lambda_u_peak = config.lambda_u * random.Uniform(1.0, 3.0);
    config.normal_dwell_seconds = random.Uniform(1, 10);
    config.burst_dwell_seconds = random.Uniform(0.5, 5);
  }
  if (random.WithProbability(0.3)) {
    config.admission_limit = random.UniformInt(1, 20);
  }
  if (random.WithProbability(0.3)) {
    config.warmup_seconds = random.Uniform(0, 2.0);
  }
  return config;
}

class RandomConfigTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomConfigTest, InvariantsHold) {
  sim::RandomStream random(base::RngSeed(1000 + GetParam()));
  const core::Config config = RandomConfig(random);
  ASSERT_FALSE(config.Validate().has_value())
      << *config.Validate() << " (draw " << GetParam() << ")";

  const core::RunMetrics m = exp::RunOnce(config, 77 + GetParam());

  // Conservation.
  EXPECT_EQ(m.txns_arrived, m.txns_terminal() + m.txns_inflight_at_end);
  EXPECT_EQ(m.txns_committed,
            m.txns_committed_fresh + m.txns_committed_stale);
  // CPU bounds.
  EXPECT_GE(m.rho_t(), 0.0);
  EXPECT_GE(m.rho_u(), 0.0);
  EXPECT_LE(m.rho_total(), 1.0 + 1e-9);
  // Metric ranges.
  EXPECT_GE(m.p_success(), 0.0);
  EXPECT_LE(m.p_success(), 1.0 + 1e-12);
  EXPECT_GE(m.f_old_low, 0.0);
  EXPECT_LE(m.f_old_low, 1.0 + 1e-12);
  EXPECT_GE(m.f_old_high, 0.0);
  EXPECT_LE(m.f_old_high, 1.0 + 1e-12);
  // Abort mode under a timestamp-detectable criterion never commits a
  // stale reader.
  if (config.abort_on_stale &&
      db::DetectableByTimestamp(config.staleness)) {
    EXPECT_EQ(m.txns_committed_stale, 0u);
  }
  // Determinism.
  const core::RunMetrics again = exp::RunOnce(config, 77 + GetParam());
  EXPECT_EQ(m.txns_committed, again.txns_committed);
  EXPECT_DOUBLE_EQ(m.value_committed, again.value_committed);
  EXPECT_DOUBLE_EQ(m.cpu_update_seconds, again.cpu_update_seconds);
}

INSTANTIATE_TEST_SUITE_P(FortyDraws, RandomConfigTest,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace strip
