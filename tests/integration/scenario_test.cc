// Hand-timed deterministic scenarios against the full controller.
//
// These tests use the external-workload mode: arrivals are injected at
// exact instants and the resulting timeline is checked to the
// microsecond, pinning down the CPU engine's arithmetic — segment
// scheduling, preemption charging, OD step injection, deadline
// semantics — independently of the stochastic workload.
//
// Baseline cost arithmetic at ips = 50e6:
//   view read   x_lookup = 4000   -> 80 us
//   install     x_lookup+x_update -> 480 us
//   OD apply    x_update = 20000  -> 400 us

#include <sstream>

#include <gtest/gtest.h>

#include "core/observer.h"
#include "workload/trace_replay.h"
#include "core/system.h"
#include "sim/simulator.h"

namespace strip::core {
namespace {

constexpr double kEps = 1e-9;

// Captures terminal transactions and installed updates with times.
class Recorder : public SystemObserver {
 public:
  struct TxnEvent {
    sim::Time time;
    std::uint64_t id;
    txn::TxnOutcome outcome;
    std::uint64_t stale_reads;
  };
  struct InstallEvent {
    sim::Time time;
    std::uint64_t id;
    bool on_demand;
  };

  void OnTransactionTerminal(sim::Time now,
                             const txn::Transaction& t) override {
    txns.push_back({now, t.id().value(), t.outcome(), t.stale_reads()});
  }
  void OnUpdateInstalled(sim::Time now, const db::Update& u,
                         const txn::Transaction* on_demand_by) override {
    installs.push_back({now, u.id.value(), on_demand_by != nullptr});
  }

  std::vector<TxnEvent> txns;
  std::vector<InstallEvent> installs;
};

Config ScenarioConfig(PolicyKind policy) {
  Config config;
  config.policy = policy;
  config.external_workload = true;
  config.sim_seconds = 30.0;
  return config;
}

txn::Transaction::Params SimpleTxn(std::uint64_t id, sim::Time arrival,
                                   double comp_instructions,
                                   sim::Time deadline,
                                   std::vector<db::ObjectId> reads = {}) {
  txn::Transaction::Params p;
  p.id = base::TxnId(id);
  p.cls = txn::TxnClass::kHighValue;
  p.value = 2.0;
  p.arrival_time = arrival;
  p.deadline = deadline;
  p.computation_instructions = comp_instructions;
  p.lookup_instructions = 4000;
  p.read_set = std::move(reads);
  return p;
}

db::Update SimpleUpdate(std::uint64_t id, sim::Time arrival,
                        sim::Time generation, db::ObjectId object) {
  db::Update u;
  u.id = base::UpdateId(id);
  u.object = object;
  u.arrival_time = arrival;
  u.generation_time = generation;
  u.value = 1.0;
  return u;
}

TEST(ScenarioTest, SingleTransactionExactTimeline) {
  sim::Simulator sim;
  System system(&sim, ScenarioConfig(PolicyKind::kTransactionFirst), base::RngSeed(1));
  Recorder recorder;
  system.AddObserver(&recorder);

  // Arrives at t=1: one 80us read, then 0.12 s of computation.
  sim.ScheduleAt(1.0, [&] {
    system.InjectTransaction(SimpleTxn(
        1, 1.0, 6'000'000, 2.0, {{db::ObjectClass::kLowImportance, 0}}));
  });
  const RunMetrics m = system.Run();

  ASSERT_EQ(recorder.txns.size(), 1u);
  EXPECT_EQ(recorder.txns[0].outcome, txn::TxnOutcome::kCommitted);
  EXPECT_NEAR(recorder.txns[0].time, 1.0 + 0.00008 + 0.12, kEps);
  EXPECT_EQ(recorder.txns[0].stale_reads, 0u);
  EXPECT_EQ(m.txns_committed, 1u);
  EXPECT_EQ(m.txns_committed_fresh, 1u);
  EXPECT_NEAR(m.cpu_txn_seconds, 0.12008, kEps);
  EXPECT_DOUBLE_EQ(m.cpu_update_seconds, 0.0);
  EXPECT_NEAR(m.response_mean, 0.12008, 0.01);
  EXPECT_DOUBLE_EQ(m.value_committed, 2.0);
  EXPECT_EQ(m.txns_committed_by_class[1], 1u);
  EXPECT_EQ(m.txns_committed_by_class[0], 0u);
}

TEST(ScenarioTest, ReadingExpiredInitialValueIsStale) {
  // All objects carry generation 0; alpha = 7, so a read at t=8 is
  // stale under MA.
  sim::Simulator sim;
  System system(&sim, ScenarioConfig(PolicyKind::kTransactionFirst), base::RngSeed(1));
  sim.ScheduleAt(8.0, [&] {
    system.InjectTransaction(SimpleTxn(
        1, 8.0, 1'000'000, 9.0, {{db::ObjectClass::kLowImportance, 5}}));
  });
  const RunMetrics m = system.Run();
  EXPECT_EQ(m.txns_committed, 1u);
  EXPECT_EQ(m.txns_committed_stale, 1u);
  EXPECT_EQ(m.txns_committed_fresh, 0u);
}

TEST(ScenarioTest, StaleAbortStopsAtTheRead) {
  Config config = ScenarioConfig(PolicyKind::kTransactionFirst);
  config.abort_on_stale = true;
  sim::Simulator sim;
  System system(&sim, config, base::RngSeed(1));
  Recorder recorder;
  system.AddObserver(&recorder);
  sim.ScheduleAt(8.0, [&] {
    system.InjectTransaction(SimpleTxn(
        1, 8.0, 6'000'000, 9.5, {{db::ObjectClass::kLowImportance, 5}}));
  });
  const RunMetrics m = system.Run();
  ASSERT_EQ(recorder.txns.size(), 1u);
  EXPECT_EQ(recorder.txns[0].outcome, txn::TxnOutcome::kStaleAbort);
  // Aborted right after the 80us read — before the 0.12 s of work.
  EXPECT_NEAR(recorder.txns[0].time, 8.00008, kEps);
  EXPECT_NEAR(m.cpu_txn_seconds, 0.00008, kEps);
  EXPECT_EQ(m.txns_stale_aborted, 1u);
}

TEST(ScenarioTest, OnDemandRescuesAStaleRead) {
  sim::Simulator sim;
  System system(&sim, ScenarioConfig(PolicyKind::kOnDemand), base::RngSeed(1));
  Recorder recorder;
  system.AddObserver(&recorder);

  // txn1 occupies the CPU from 7.5 to 8.1 so the update arriving at
  // 7.6 stays buffered (OD never installs while transactions wait).
  sim.ScheduleAt(7.5, [&] {
    system.InjectTransaction(SimpleTxn(1, 7.5, 30'000'000, 9.0));
  });
  sim.ScheduleAt(7.6, [&] {
    system.InjectUpdate(SimpleUpdate(
        100, 7.6, 7.55, {db::ObjectClass::kLowImportance, 5}));
  });
  // txn2 reads the stale object; the queued update rescues it.
  sim.ScheduleAt(7.7, [&] {
    system.InjectTransaction(SimpleTxn(
        2, 7.7, 6'000'000, 9.5, {{db::ObjectClass::kLowImportance, 5}}));
  });
  const RunMetrics m = system.Run();

  EXPECT_EQ(m.txns_committed, 2u);
  EXPECT_EQ(m.updates_applied_on_demand, 1u);
  EXPECT_EQ(m.txns_committed_fresh, 2u);  // the rescue made it fresh
  ASSERT_EQ(recorder.installs.size(), 1u);
  EXPECT_TRUE(recorder.installs[0].on_demand);
  // txn1: 7.5 + 0.6 = 8.1. txn2: starts 8.1, read 80us, scan (free),
  // apply 400us, work 0.12.
  ASSERT_EQ(recorder.txns.size(), 2u);
  EXPECT_NEAR(recorder.txns[0].time, 8.1, kEps);
  EXPECT_NEAR(recorder.txns[1].time, 8.1 + 0.00008 + 0.0004 + 0.12, kEps);
  // The OD apply is charged to update work.
  EXPECT_NEAR(m.cpu_update_seconds, 0.0004, kEps);
}

TEST(ScenarioTest, UpdateFirstPreemptsExactly) {
  sim::Simulator sim;
  System system(&sim, ScenarioConfig(PolicyKind::kUpdateFirst), base::RngSeed(1));
  Recorder recorder;
  system.AddObserver(&recorder);

  sim.ScheduleAt(1.0, [&] {
    system.InjectTransaction(SimpleTxn(1, 1.0, 6'000'000, 3.0));
  });
  sim.ScheduleAt(1.05, [&] {
    system.InjectUpdate(
        SimpleUpdate(100, 1.05, 1.04, {db::ObjectClass::kLowImportance, 0}));
  });
  const RunMetrics m = system.Run();

  ASSERT_EQ(recorder.installs.size(), 1u);
  // Install runs 1.05 -> 1.05048 (lookup + update, no switch cost).
  EXPECT_NEAR(recorder.installs[0].time, 1.05048, kEps);
  ASSERT_EQ(recorder.txns.size(), 1u);
  // The transaction lost 480us to the preempting install.
  EXPECT_NEAR(recorder.txns[0].time, 1.0 + 0.12 + 0.00048, kEps);
  EXPECT_NEAR(m.cpu_txn_seconds, 0.12, kEps);
  EXPECT_NEAR(m.cpu_update_seconds, 0.00048, kEps);
}

TEST(ScenarioTest, ContextSwitchChargesOnPreemption) {
  Config config = ScenarioConfig(PolicyKind::kUpdateFirst);
  config.x_switch = 10000;  // 200 us
  sim::Simulator sim;
  System system(&sim, config, base::RngSeed(1));
  Recorder recorder;
  system.AddObserver(&recorder);

  sim.ScheduleAt(1.0, [&] {
    system.InjectTransaction(SimpleTxn(1, 1.0, 6'000'000, 3.0));
  });
  sim.ScheduleAt(1.05, [&] {
    system.InjectUpdate(
        SimpleUpdate(100, 1.05, 1.04, {db::ObjectClass::kLowImportance, 0}));
  });
  const RunMetrics m = system.Run();

  ASSERT_EQ(recorder.installs.size(), 1u);
  // Preemptive receive costs 2 switches on top of the install, and
  // resuming the transaction costs one more.
  EXPECT_NEAR(recorder.installs[0].time, 1.05 + 0.0004 + 0.00048, kEps);
  ASSERT_EQ(recorder.txns.size(), 1u);
  EXPECT_NEAR(recorder.txns[0].time,
              1.0 + 0.12 + 0.00048 + 2 * 0.0002 + 0.0002, kEps);
  EXPECT_NEAR(m.cpu_update_seconds, 0.00048 + 0.0004, kEps);
}

TEST(ScenarioTest, FirmDeadlineCutsTheTransactionDown) {
  sim::Simulator sim;
  Config config = ScenarioConfig(PolicyKind::kTransactionFirst);
  config.feasible_deadline = false;  // let it run into the wall
  System system(&sim, config, base::RngSeed(1));
  Recorder recorder;
  system.AddObserver(&recorder);
  // Needs 0.12 s but the deadline is 0.05 s away.
  sim.ScheduleAt(1.0, [&] {
    system.InjectTransaction(SimpleTxn(1, 1.0, 6'000'000, 1.05));
  });
  const RunMetrics m = system.Run();
  ASSERT_EQ(recorder.txns.size(), 1u);
  EXPECT_EQ(recorder.txns[0].outcome, txn::TxnOutcome::kMissedDeadline);
  EXPECT_NEAR(recorder.txns[0].time, 1.05, kEps);  // exactly at deadline
  EXPECT_NEAR(m.cpu_txn_seconds, 0.05, kEps);      // partial work charged
}

TEST(ScenarioTest, FeasibleScreenAbortsBeforeWasteUnderBacklog) {
  sim::Simulator sim;
  Config config = ScenarioConfig(PolicyKind::kTransactionFirst);
  System system(&sim, config, base::RngSeed(1));
  Recorder recorder;
  system.AddObserver(&recorder);
  // txn1 runs 1.0 -> 1.6; txn2 arrives at 1.1 with a deadline it can
  // only meet if started by 1.18 — hopeless once txn1 holds the CPU.
  sim.ScheduleAt(1.0, [&] {
    system.InjectTransaction(SimpleTxn(1, 1.0, 30'000'000, 5.0));
  });
  sim.ScheduleAt(1.1, [&] {
    system.InjectTransaction(SimpleTxn(2, 1.1, 6'000'000, 1.3));
  });
  const RunMetrics m = system.Run();
  ASSERT_EQ(recorder.txns.size(), 2u);
  // txn2 is screened out when the CPU frees at 1.6 (deadline 1.3
  // already passed — the deadline event fired first, so either path
  // records a non-commit without running it).
  EXPECT_EQ(m.txns_committed, 1u);
  EXPECT_EQ(m.txns_missed_deadline + m.txns_infeasible, 1u);
  EXPECT_NEAR(m.cpu_txn_seconds, 0.6, kEps);  // txn2 never ran
}

TEST(ScenarioTest, FeasibleScreenFiresAtSchedulingPoint) {
  sim::Simulator sim;
  Config config = ScenarioConfig(PolicyKind::kTransactionFirst);
  System system(&sim, config, base::RngSeed(1));
  Recorder recorder;
  system.AddObserver(&recorder);
  // txn1 runs 1.0 -> 1.2; txn2 (deadline 1.25, needs 0.12) waits and
  // is screened as infeasible at the 1.2 scheduling point, before its
  // own deadline event at 1.25.
  sim.ScheduleAt(1.0, [&] {
    system.InjectTransaction(SimpleTxn(1, 1.0, 10'000'000, 5.0));
  });
  sim.ScheduleAt(1.05, [&] {
    system.InjectTransaction(SimpleTxn(2, 1.05, 6'000'000, 1.25));
  });
  const RunMetrics m = system.Run();
  EXPECT_EQ(m.txns_infeasible, 1u);
  ASSERT_EQ(recorder.txns.size(), 2u);
  // txn1 commits at 1.2; at that same scheduling point txn2 is
  // screened out, before its own deadline event at 1.25.
  EXPECT_EQ(recorder.txns[0].outcome, txn::TxnOutcome::kCommitted);
  EXPECT_EQ(recorder.txns[1].outcome, txn::TxnOutcome::kInfeasible);
  EXPECT_NEAR(recorder.txns[1].time, 1.2, kEps);
}

TEST(ScenarioTest, FifoInstallsOldestGenerationFirst) {
  for (const QueueDiscipline discipline :
       {QueueDiscipline::kFifo, QueueDiscipline::kLifo}) {
    sim::Simulator sim;
    Config config = ScenarioConfig(PolicyKind::kTransactionFirst);
    config.queue_discipline = discipline;
    System system(&sim, config, base::RngSeed(1));
    Recorder recorder;
    system.AddObserver(&recorder);
    // A transaction holds the CPU while two updates arrive; when it
    // finishes, the updater drains them in discipline order.
    sim.ScheduleAt(1.0, [&] {
      system.InjectTransaction(SimpleTxn(1, 1.0, 10'000'000, 5.0));
    });
    sim.ScheduleAt(1.01, [&] {
      system.InjectUpdate(SimpleUpdate(
          101, 1.01, 0.90, {db::ObjectClass::kLowImportance, 1}));
    });
    sim.ScheduleAt(1.02, [&] {
      system.InjectUpdate(SimpleUpdate(
          102, 1.02, 0.95, {db::ObjectClass::kLowImportance, 2}));
    });
    system.Run();
    ASSERT_EQ(recorder.installs.size(), 2u);
    if (discipline == QueueDiscipline::kFifo) {
      EXPECT_EQ(recorder.installs[0].id, 101u);  // oldest generation
    } else {
      EXPECT_EQ(recorder.installs[0].id, 102u);  // newest generation
    }
  }
}

TEST(ScenarioTest, UnworthyUpdateIsSkippedAndCheap) {
  sim::Simulator sim;
  System system(&sim, ScenarioConfig(PolicyKind::kUpdateFirst), base::RngSeed(1));
  Recorder recorder;
  system.AddObserver(&recorder);
  const db::ObjectId object{db::ObjectClass::kHighImportance, 7};
  sim.ScheduleAt(1.0,
                 [&] { system.InjectUpdate(SimpleUpdate(1, 1.0, 0.9, object)); });
  // Older generation than what is now installed: unworthy.
  sim.ScheduleAt(2.0,
                 [&] { system.InjectUpdate(SimpleUpdate(2, 2.0, 0.5, object)); });
  const RunMetrics m = system.Run();
  EXPECT_EQ(m.updates_installed, 1u);
  EXPECT_EQ(m.updates_unworthy, 1u);
  ASSERT_EQ(recorder.installs.size(), 1u);
  // Worthy: 480us; unworthy: only the 80us lookup.
  EXPECT_NEAR(m.cpu_update_seconds, 0.00048 + 0.00008, kEps);
}

TEST(ScenarioTest, TraceReplayDrivesTheSystem) {
  std::istringstream trace(
      "# two updates and one transaction\n"
      "update,1.0,low,5,0.9,10\n"
      "update,2.0,low,5,1.9,20\n"
      "txn,3.0,low,1.5,4.0,6000000,0,low:5\n");
  std::vector<workload::TraceReplay::Record> records;
  ASSERT_FALSE(workload::TraceReplay::Parse(trace, &records).has_value());

  sim::Simulator sim;
  System system(&sim, ScenarioConfig(PolicyKind::kUpdateFirst), base::RngSeed(1));
  workload::TraceReplay replay(
      &sim, records,
      [&](const db::Update& u) { system.InjectUpdate(u); },
      [&](const txn::Transaction::Params& p) {
        system.InjectTransaction(p);
      });
  const RunMetrics m = system.Run();
  EXPECT_EQ(m.updates_arrived, 2u);
  EXPECT_EQ(m.updates_installed, 2u);
  EXPECT_EQ(m.txns_committed, 1u);
  EXPECT_EQ(m.txns_committed_fresh, 1u);  // value from t=1.9, read ~3.0
  EXPECT_DOUBLE_EQ(system.database().value(
                       {db::ObjectClass::kLowImportance, 5}),
                   20.0);
}

}  // namespace
}  // namespace strip::core
