// Integration tests pinning the paper's headline qualitative results.
//
// Each test asserts the *shape* of one published finding — orderings,
// crossovers, directions of effects — on short runs with fixed seeds.
// Absolute values are checked only where the paper's own model pins
// them (e.g., the update stream's CPU demand).

#include <gtest/gtest.h>

#include "exp/experiment.h"

namespace strip {
namespace {

using core::Config;
using core::PolicyKind;
using core::RunMetrics;

RunMetrics RunPolicy(PolicyKind policy, double lambda_t, double seconds = 60.0,
               void (*tweak)(Config&) = nullptr) {
  Config config;
  config.policy = policy;
  config.lambda_t = lambda_t;
  config.sim_seconds = seconds;
  if (tweak != nullptr) tweak(config);
  return exp::RunOnce(config, 7);
}

// Figure 3(b): installing the full 400/s stream costs about a fifth of
// the CPU, and UF pays it regardless of transaction load.
TEST(PaperShapes, Fig3UpdateStreamDemandsFifthOfCpu) {
  for (double lambda_t : {1.0, 10.0, 25.0}) {
    const RunMetrics uf = RunPolicy(PolicyKind::kUpdateFirst, lambda_t);
    EXPECT_NEAR(uf.rho_u(), 0.19, 0.025) << "lambda_t=" << lambda_t;
  }
}

// Figure 3(b): TF's update share collapses as transactions crowd it out.
TEST(PaperShapes, Fig3TfUpdateShareCollapsesUnderLoad) {
  const RunMetrics light = RunPolicy(PolicyKind::kTransactionFirst, 1);
  const RunMetrics heavy = RunPolicy(PolicyKind::kTransactionFirst, 20);
  EXPECT_NEAR(light.rho_u(), 0.19, 0.025);
  EXPECT_LT(heavy.rho_u(), 0.02);
}

// Figure 3: total utilization saturates at 1 by lambda_t ~ 10.
TEST(PaperShapes, Fig3TotalUtilizationSaturates) {
  for (PolicyKind policy :
       {PolicyKind::kUpdateFirst, PolicyKind::kTransactionFirst,
        PolicyKind::kOnDemand}) {
    const RunMetrics m = RunPolicy(policy, 15);
    EXPECT_GT(m.rho_total(), 0.97);
    EXPECT_LE(m.rho_total(), 1.0 + 1e-9);
  }
}

// Figure 4(a): TF/OD miss fewer deadlines than UF at every load.
TEST(PaperShapes, Fig4TfOdMissFewestDeadlines) {
  for (double lambda_t : {10.0, 20.0}) {
    const RunMetrics uf = RunPolicy(PolicyKind::kUpdateFirst, lambda_t);
    const RunMetrics tf = RunPolicy(PolicyKind::kTransactionFirst, lambda_t);
    const RunMetrics od = RunPolicy(PolicyKind::kOnDemand, lambda_t);
    EXPECT_LT(tf.p_md(), uf.p_md());
    EXPECT_LT(od.p_md(), uf.p_md());
  }
}

// Figure 4(b): overload *raises* the value returned — the scheduler
// picks the best opportunities — and TF/OD earn the most.
TEST(PaperShapes, Fig4ValueGrowsWithLoad) {
  for (PolicyKind policy :
       {PolicyKind::kUpdateFirst, PolicyKind::kTransactionFirst}) {
    const RunMetrics at10 = RunPolicy(policy, 10);
    const RunMetrics at25 = RunPolicy(policy, 25);
    EXPECT_GT(at25.av(), at10.av());
  }
  EXPECT_GT(RunPolicy(PolicyKind::kTransactionFirst, 25).av(),
            RunPolicy(PolicyKind::kUpdateFirst, 25).av());
}

// Figure 5: UF keeps staleness under 10% at any load; TF's data is
// mostly stale past saturation; SU protects exactly the high partition.
TEST(PaperShapes, Fig5StalenessSplitsByPolicy) {
  const RunMetrics uf = RunPolicy(PolicyKind::kUpdateFirst, 20);
  EXPECT_LT(uf.f_old_low, 0.10);
  EXPECT_LT(uf.f_old_high, 0.10);
  const RunMetrics tf = RunPolicy(PolicyKind::kTransactionFirst, 20);
  EXPECT_GT(tf.f_old_low, 0.8);
  EXPECT_GT(tf.f_old_high, 0.8);
  const RunMetrics su = RunPolicy(PolicyKind::kSplitUpdates, 20);
  EXPECT_LT(su.f_old_high, 0.10);
  EXPECT_GT(su.f_old_low, 0.8);
}

// Figure 5: OD stays slightly fresher than TF (on-demand installs).
TEST(PaperShapes, Fig5OdSlightlyFresherThanTf) {
  const RunMetrics tf = RunPolicy(PolicyKind::kTransactionFirst, 15);
  const RunMetrics od = RunPolicy(PolicyKind::kOnDemand, 15);
  EXPECT_LE(od.f_old_high, tf.f_old_high);
}

// Figure 6(a): the p_success ranking is OD > UF > SU > TF at
// saturation and beyond.
TEST(PaperShapes, Fig6SuccessRankingAtSaturation) {
  for (double lambda_t : {10.0, 20.0}) {
    const double od = RunPolicy(PolicyKind::kOnDemand, lambda_t).p_success();
    const double uf = RunPolicy(PolicyKind::kUpdateFirst, lambda_t).p_success();
    const double su = RunPolicy(PolicyKind::kSplitUpdates, lambda_t).p_success();
    const double tf =
        RunPolicy(PolicyKind::kTransactionFirst, lambda_t).p_success();
    EXPECT_GT(od, uf) << "lambda_t=" << lambda_t;
    EXPECT_GT(uf, su) << "lambda_t=" << lambda_t;
    EXPECT_GT(su, tf) << "lambda_t=" << lambda_t;
  }
}

// Figure 6(b): for committed transactions, staleness is a non-issue
// under OD and UF but a big one under TF.
TEST(PaperShapes, Fig6NontardyFreshness) {
  const double od = RunPolicy(PolicyKind::kOnDemand, 15).p_suc_nontardy();
  const double uf = RunPolicy(PolicyKind::kUpdateFirst, 15).p_suc_nontardy();
  const double tf = RunPolicy(PolicyKind::kTransactionFirst, 15).p_suc_nontardy();
  EXPECT_GT(od, 0.8);
  EXPECT_GT(uf, 0.8);
  EXPECT_LT(tf, 0.4);
}

// Figure 7(a): heavyweight installs hurt UF and SU, not TF/OD.
TEST(PaperShapes, Fig7HeavyInstallsHurtUfSu) {
  auto heavy = [](Config& c) { c.x_update = 50000; };
  const double uf_base = RunPolicy(PolicyKind::kUpdateFirst, 10).av();
  const double uf_heavy = RunPolicy(PolicyKind::kUpdateFirst, 10, 60.0, heavy).av();
  EXPECT_LT(uf_heavy, uf_base - 1.0);
  const double tf_base = RunPolicy(PolicyKind::kTransactionFirst, 10).av();
  const double tf_heavy =
      RunPolicy(PolicyKind::kTransactionFirst, 10, 60.0, heavy).av();
  EXPECT_NEAR(tf_heavy, tf_base, 0.5);
}

// Figure 7(b): queue-management cost hits the queue-based schemes and
// leaves UF untouched.
TEST(PaperShapes, Fig7QueueCostsHitQueueUsers) {
  auto costly = [](Config& c) { c.x_queue = 5000; };
  const double tf_base = RunPolicy(PolicyKind::kTransactionFirst, 10).av();
  const double tf_costly =
      RunPolicy(PolicyKind::kTransactionFirst, 10, 60.0, costly).av();
  EXPECT_LT(tf_costly, tf_base - 2.0);
  const double uf_base = RunPolicy(PolicyKind::kUpdateFirst, 10).av();
  const double uf_costly =
      RunPolicy(PolicyKind::kUpdateFirst, 10, 60.0, costly).av();
  EXPECT_NEAR(uf_costly, uf_base, 0.3);
}

// Figure 8: only OD pays for expensive queue scans, and a large enough
// scan cost drops it below UF.
TEST(PaperShapes, Fig8ScanCostOnlyHurtsOd) {
  auto costly = [](Config& c) { c.x_scan = 8000; };
  const double od_base = RunPolicy(PolicyKind::kOnDemand, 10).av();
  const double od_costly = RunPolicy(PolicyKind::kOnDemand, 10, 60.0, costly).av();
  const double uf_costly =
      RunPolicy(PolicyKind::kUpdateFirst, 10, 60.0, costly).av();
  const double uf_base = RunPolicy(PolicyKind::kUpdateFirst, 10).av();
  EXPECT_LT(od_costly, od_base - 2.0);
  EXPECT_NEAR(uf_costly, uf_base, 0.3);
  EXPECT_LT(od_costly, uf_costly);  // the crossover the paper calls out
}

// Figure 9(b): raising the update rate drains value from UF and SU but
// not from TF/OD.
TEST(PaperShapes, Fig9UpdateRateDrainsUfSu) {
  auto fast = [](Config& c) { c.lambda_u = 600; };
  const double uf_400 = RunPolicy(PolicyKind::kUpdateFirst, 10).av();
  const double uf_600 = RunPolicy(PolicyKind::kUpdateFirst, 10, 60.0, fast).av();
  EXPECT_LT(uf_600, uf_400 - 0.4);
  const double od_400 = RunPolicy(PolicyKind::kOnDemand, 10).av();
  const double od_600 = RunPolicy(PolicyKind::kOnDemand, 10, 60.0, fast).av();
  EXPECT_NEAR(od_600, od_400, 0.5);
}

// Figure 10(b): with N_l, N_h scaled to hold (N/alpha) constant, alpha
// itself barely matters.
TEST(PaperShapes, Fig10AlphaWithScaledNIsFlat) {
  auto small = [](Config& c) {
    c.alpha = 3.5;
    c.n_low = 250;
    c.n_high = 250;
  };
  const double base = RunPolicy(PolicyKind::kOnDemand, 10).av();
  const double scaled = RunPolicy(PolicyKind::kOnDemand, 10, 60.0, small).av();
  EXPECT_NEAR(scaled, base, 0.6);
}

// Figure 11: FIFO service keeps data staler than LIFO for TF near
// saturation.
TEST(PaperShapes, Fig11FifoStalerThanLifo) {
  auto lifo = [](Config& c) {
    c.queue_discipline = core::QueueDiscipline::kLifo;
  };
  const RunMetrics fifo = RunPolicy(PolicyKind::kTransactionFirst, 10);
  const RunMetrics lifo_run =
      RunPolicy(PolicyKind::kTransactionFirst, 10, 60.0, lifo);
  EXPECT_GT(fifo.f_old_low, lifo_run.f_old_low);
  EXPECT_LE(fifo.p_success(), lifo_run.p_success() + 0.02);
}

// Figures 12-14 (abort-on-stale scenario).
TEST(PaperShapes, Fig12AbortsFreshenTfHighData) {
  auto abort_mode = [](Config& c) { c.abort_on_stale = true; };
  const RunMetrics no_abort = RunPolicy(PolicyKind::kTransactionFirst, 10);
  const RunMetrics with_abort =
      RunPolicy(PolicyKind::kTransactionFirst, 10, 60.0, abort_mode);
  EXPECT_LT(with_abort.f_old_high, 0.3);
  EXPECT_GT(no_abort.f_old_high, 0.6);
}

TEST(PaperShapes, Fig13OdWinsValueUnderAborts) {
  auto abort_mode = [](Config& c) { c.abort_on_stale = true; };
  const double od = RunPolicy(PolicyKind::kOnDemand, 20, 60.0, abort_mode).av();
  const double uf = RunPolicy(PolicyKind::kUpdateFirst, 20, 60.0, abort_mode).av();
  const double su = RunPolicy(PolicyKind::kSplitUpdates, 20, 60.0, abort_mode).av();
  const double tf =
      RunPolicy(PolicyKind::kTransactionFirst, 20, 60.0, abort_mode).av();
  EXPECT_GT(od, su);
  EXPECT_GT(su, uf);  // the paper's surprise: SU beats UF and TF
  EXPECT_GT(su, tf);
  EXPECT_LT(tf, uf);  // TF is hurt the most
}

TEST(PaperShapes, Fig14OdWinsSuccessUnderAborts) {
  auto abort_mode = [](Config& c) { c.abort_on_stale = true; };
  const double od =
      RunPolicy(PolicyKind::kOnDemand, 15, 60.0, abort_mode).p_success();
  const double uf =
      RunPolicy(PolicyKind::kUpdateFirst, 15, 60.0, abort_mode).p_success();
  EXPECT_GT(od, uf + 0.05);
}

// Figure 15: the later view data is read (large p_view), the worse,
// and TF suffers the most.
TEST(PaperShapes, Fig15LateReadsWasteWork) {
  auto late = [](Config& c) {
    c.abort_on_stale = true;
    c.p_view = 0.8;
  };
  auto early = [](Config& c) { c.abort_on_stale = true; };
  const double tf_early =
      RunPolicy(PolicyKind::kTransactionFirst, 10, 60.0, early).av();
  const double tf_late =
      RunPolicy(PolicyKind::kTransactionFirst, 10, 60.0, late).av();
  const double od_early = RunPolicy(PolicyKind::kOnDemand, 10, 60.0, early).av();
  const double od_late = RunPolicy(PolicyKind::kOnDemand, 10, 60.0, late).av();
  EXPECT_LT(tf_late, tf_early - 3.0);       // TF collapses
  EXPECT_GT(od_late, od_early - 1.0);       // OD barely moves
}

// Figure 16: the ranking persists under the UU criterion, with UF
// perfectly fresh by construction.
TEST(PaperShapes, Fig16UuRankingPersists) {
  auto uu = [](Config& c) {
    c.staleness = db::StalenessCriterion::kUnappliedUpdate;
  };
  const double od = RunPolicy(PolicyKind::kOnDemand, 10, 60.0, uu).p_success();
  const double uf = RunPolicy(PolicyKind::kUpdateFirst, 10, 60.0, uu).p_success();
  const double su = RunPolicy(PolicyKind::kSplitUpdates, 10, 60.0, uu).p_success();
  const double tf =
      RunPolicy(PolicyKind::kTransactionFirst, 10, 60.0, uu).p_success();
  EXPECT_GT(od, uf);
  EXPECT_GT(uf, su);
  EXPECT_GT(su, tf);
}

}  // namespace
}  // namespace strip
