// Golden regression locks.
//
// Runs are pure functions of (Config, seed), so the baseline metrics
// for seed 1 over 50 simulated seconds are constants of the
// implementation. These tests pin them. A failure here means the
// model's behaviour changed — if the change is intentional (a cost
// model fix, a scheduling refinement), re-derive the constants with
//   ./build/tools/strip_sim --policy=<P> --sim_seconds=50 --quiet
// and update; if not, it caught a regression no invariant test could.

#include <gtest/gtest.h>

#include "exp/experiment.h"

namespace strip {
namespace {

struct Golden {
  core::PolicyKind policy;
  double p_md;
  double p_success;
  double av;
  double rho_t;
  double rho_u;
  double f_old_l;
  double f_old_h;
};

class GoldenTest : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenTest, BaselineSeed1FiftySecondsIsPinned) {
  const Golden& golden = GetParam();
  core::Config config;
  config.policy = golden.policy;
  config.sim_seconds = 50.0;
  const core::RunMetrics m = exp::RunOnce(config, 1);
  constexpr double kTol = 1e-3;  // the pins are printed to 4 decimals
  EXPECT_NEAR(m.p_md(), golden.p_md, kTol);
  EXPECT_NEAR(m.p_success(), golden.p_success, kTol);
  EXPECT_NEAR(m.av(), golden.av, kTol);
  EXPECT_NEAR(m.rho_t(), golden.rho_t, kTol);
  EXPECT_NEAR(m.rho_u(), golden.rho_u, kTol);
  EXPECT_NEAR(m.f_old_low, golden.f_old_l, kTol);
  EXPECT_NEAR(m.f_old_high, golden.f_old_h, kTol);
}

INSTANTIATE_TEST_SUITE_P(
    PaperBaseline, GoldenTest,
    ::testing::Values(
        Golden{core::PolicyKind::kUpdateFirst, 0.3552, 0.5791, 11.5135,
               0.7805, 0.1889, 0.0490, 0.0486},
        Golden{core::PolicyKind::kTransactionFirst, 0.2131, 0.1742,
               12.9663, 0.9236, 0.0743, 0.7727, 0.7751},
        Golden{core::PolicyKind::kSplitUpdates, 0.2793, 0.4949, 12.3967,
               0.8602, 0.1376, 0.7199, 0.0486},
        Golden{core::PolicyKind::kOnDemand, 0.2131, 0.7152, 12.9411,
               0.9232, 0.0747, 0.7331, 0.7120}),
    [](const ::testing::TestParamInfo<Golden>& param_info) {
      return core::PolicyKindName(param_info.param.policy);
    });

}  // namespace
}  // namespace strip
