// ChromeTraceWriter: document structure, span pairing, OD flow
// arrows, determinism, and the golden file.
//
// The golden test byte-compares the trace for a fixed (config, seed)
// against tests/obs/testdata/chrome_trace_golden.json. Runs are pure
// functions of (Config, seed) and the writer is deterministic by
// design (fixed key order, fixed float formats, no wall clocks), so
// the bytes are a constant of the implementation. Regenerate with
//   STRIP_UPDATE_GOLDEN=1 ./build/tests/chrome_trace_test

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/system.h"
#include "exp/experiment.h"
#include "obs/trace/chrome_trace.h"
#include "obs/trace/trace_analysis.h"

namespace strip::obs::trace {
namespace {

constexpr char kGoldenPath[] =
    STRIP_TEST_SOURCE_DIR "/obs/testdata/chrome_trace_golden.json";

// Short OD run tuned so every event family appears: a tight freshness
// bound makes reads go stale (hence OD installs and flow arrows), and
// transaction preemption plus the hot transaction stream produce
// preempt and drop records.
core::Config GoldenConfig() {
  core::Config config;
  config.policy = core::PolicyKind::kOnDemand;
  config.sim_seconds = 1.5;
  config.warmup_seconds = 0.0;
  config.alpha = 0.5;
  config.lambda_t = 30.0;
  config.n_low = 200;
  config.n_high = 200;
  config.txn_preemption = true;
  return config;
}

std::string ProduceTrace(const core::Config& config, std::uint64_t seed) {
  std::ostringstream out;
  exp::RunHook hook = [&out](core::System& system,
                             const exp::RunContext&) -> exp::RunFinisher {
    auto trace = std::make_shared<ChromeTraceWriter>(&out);
    system.AddObserver(trace.get());
    return [trace](const core::RunMetrics&) { trace->Finish(); };
  };
  exp::RunContext context;
  context.seed = seed;
  exp::RunOnce(config, seed, hook, context);
  return out.str();
}

int CountOccurrences(const std::string& text, const std::string& needle) {
  int count = 0;
  std::size_t at = 0;
  while ((at = text.find(needle, at)) != std::string::npos) {
    ++count;
    at += needle.size();
  }
  return count;
}

TEST(ChromeTraceTest, DocumentShapeAndRequiredRecords) {
  const std::string doc = ProduceTrace(GoldenConfig(), 7);
  EXPECT_EQ(doc.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(doc.find("\n]}\n"), std::string::npos);
  // Process and fixed-track metadata.
  EXPECT_NE(doc.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(doc.find("\"args\":{\"name\":\"scheduler\"}"),
            std::string::npos);
  EXPECT_NE(doc.find("\"args\":{\"name\":\"updates\"}"), std::string::npos);
  // Every record carries pid 1.
  EXPECT_EQ(CountOccurrences(doc, "\"pid\":1"),
            CountOccurrences(doc, "\"ph\":\""));
  // The lifecycle event families all appear.
  for (const char* cat :
       {"\"cat\":\"txn-admitted\"", "\"cat\":\"txn-terminal\"",
        "\"cat\":\"update-arrival\"", "\"cat\":\"update-enqueued\"",
        "\"cat\":\"update-installed\"", "\"cat\":\"dispatch\"",
        "\"cat\":\"segment-complete\"", "\"cat\":\"preempt\"",
        "\"cat\":\"stale-read\"", "\"cat\":\"policy-decision\"",
        "\"cat\":\"phase\""}) {
    EXPECT_NE(doc.find(cat), std::string::npos) << cat;
  }
}

TEST(ChromeTraceTest, SpansPairAndFlowArrowsComeInPairs) {
  const std::string doc = ProduceTrace(GoldenConfig(), 7);
  EXPECT_GT(CountOccurrences(doc, "\"ph\":\"B\""), 0);
  EXPECT_EQ(CountOccurrences(doc, "\"ph\":\"B\""),
            CountOccurrences(doc, "\"ph\":\"E\""));
  // The OD causal chain: at least one flow pair, starts == finishes,
  // and the finish side binds enclosing-slice semantics.
  const int starts = CountOccurrences(doc, "\"ph\":\"s\"");
  const int finishes = CountOccurrences(doc, "\"ph\":\"f\"");
  EXPECT_GE(starts, 1);
  EXPECT_EQ(starts, finishes);
  EXPECT_EQ(finishes, CountOccurrences(doc, "\"bp\":\"e\""));
  EXPECT_EQ(starts, CountOccurrences(doc, "\"name\":\"install-od\""));
}

TEST(ChromeTraceTest, SameSeedSameBytes) {
  const std::string first = ProduceTrace(GoldenConfig(), 7);
  const std::string second = ProduceTrace(GoldenConfig(), 7);
  EXPECT_EQ(first, second);
}

TEST(ChromeTraceTest, DifferentSeedDifferentBytes) {
  const std::string first = ProduceTrace(GoldenConfig(), 7);
  const std::string second = ProduceTrace(GoldenConfig(), 8);
  EXPECT_NE(first, second);
}

TEST(ChromeTraceTest, ParsesBackAndCriticalPathIsConsistent) {
  const std::string doc = ProduceTrace(GoldenConfig(), 7);
  std::istringstream in(doc);
  std::string error;
  const std::optional<ParsedTrace> parsed = ParseChromeTrace(in, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_FALSE(parsed->events.empty());
  const auto kinds = KindCounts(parsed->events);
  EXPECT_EQ(kinds.at("dispatch"), kinds.at("segment-complete"));
  // Every transaction that has a terminal yields a critical path whose
  // running+waiting time spans admission to terminal.
  const std::optional<std::uint64_t> miss =
      FirstMissedDeadlineTxn(parsed->events);
  if (miss.has_value()) {
    const std::optional<CriticalPath> path =
        ExtractCriticalPath(parsed->events, *miss, &error);
    ASSERT_TRUE(path.has_value()) << error;
    EXPECT_GE(path->terminal, path->admitted);
    EXPECT_NEAR(path->running_seconds + path->waiting_seconds,
                path->terminal - path->admitted, 1e-9);
  }
}

TEST(ChromeTraceTest, MatchesGoldenFile) {
  const std::string doc = ProduceTrace(GoldenConfig(), 7);

  if (std::getenv("STRIP_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(kGoldenPath, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << kGoldenPath;
    out << doc;
    GTEST_SKIP() << "golden file regenerated at " << kGoldenPath;
  }

  std::ifstream in(kGoldenPath, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << kGoldenPath
                  << " (regenerate with STRIP_UPDATE_GOLDEN=1)";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(doc, golden.str())
      << "chrome trace bytes changed; if intentional, regenerate with "
         "STRIP_UPDATE_GOLDEN=1 and review the diff";
}

}  // namespace
}  // namespace strip::obs::trace
