// RunTelemetry: document schema, determinism, and the golden file.
//
// The golden test byte-compares the document for a fixed (config,
// seed) against tests/obs/testdata/telemetry_golden.json. Runs are
// pure functions of (Config, seed) and the writer is deterministic by
// design (fixed key order, %.17g, no timestamps), so the bytes are a
// constant of the implementation. If an intentional change (new
// column, schema bump) fails this test, regenerate with
//   STRIP_UPDATE_GOLDEN=1 ./build/tests/telemetry_test
// and review the diff like any other golden update.

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/system.h"
#include "exp/experiment.h"
#include "obs/telemetry.h"

namespace strip::obs {
namespace {

constexpr char kGoldenPath[] =
    STRIP_TEST_SOURCE_DIR "/obs/testdata/telemetry_golden.json";

// The fixed run the golden file pins: paper baseline, short horizon,
// one-second warm-up, seed 1.
core::Config GoldenConfig() {
  core::Config config;
  config.sim_seconds = 5.0;
  config.warmup_seconds = 1.0;
  return config;
}

std::string ProduceDocument(const core::Config& config, std::uint64_t seed) {
  std::ostringstream out;
  exp::RunHook hook = [&out](core::System& system,
                             const exp::RunContext& context)
      -> exp::RunFinisher {
    RunTelemetry::Options options;
    options.seed = context.seed;
    auto telemetry = std::make_shared<RunTelemetry>(&system, options);
    return [telemetry, &out](const core::RunMetrics& metrics) {
      telemetry->WriteJson(out, metrics);
    };
  };
  exp::RunContext context;
  context.seed = seed;
  exp::RunOnce(config, seed, hook, context);
  return out.str();
}

TEST(TelemetryTest, DocumentHasSchemaAndRequiredSections) {
  const std::string doc = ProduceDocument(GoldenConfig(), 1);
  EXPECT_NE(doc.find("\"schema\": \"strip.telemetry/v4\""),
            std::string::npos);
  // The acceptance bar: at least 5 time series and 2 histograms.
  for (const char* series :
       {"\"time\"", "\"uq_depth\"", "\"os_depth\"", "\"ready_queue\"",
        "\"live_txns\"", "\"f_stale_low\"", "\"f_stale_high\"",
        "\"cpu_share_txn\"", "\"cpu_share_updater\"",
        "\"cpu_share_idle\""}) {
    EXPECT_NE(doc.find(series), std::string::npos) << series;
  }
  for (const char* section :
       {"\"run\"", "\"phases\"", "\"series\"", "\"histograms\"",
        "\"response_seconds\"", "\"slack_at_commit_seconds\"",
        "\"update_age_at_install_seconds\"", "\"stale_reads_seen\"",
        "\"metrics\"", "\"warmup_end\"", "\"run_end\"", "\"p50\"",
        "\"p90\"", "\"p99\""}) {
    EXPECT_NE(doc.find(section), std::string::npos) << section;
  }
}

TEST(TelemetryTest, SameSeedSameBytes) {
  const std::string first = ProduceDocument(GoldenConfig(), 1);
  const std::string second = ProduceDocument(GoldenConfig(), 1);
  EXPECT_EQ(first, second);
}

TEST(TelemetryTest, DifferentSeedDifferentBytes) {
  const std::string first = ProduceDocument(GoldenConfig(), 1);
  const std::string second = ProduceDocument(GoldenConfig(), 2);
  EXPECT_NE(first, second);
}

TEST(TelemetryTest, HistogramsRecordTheRun) {
  core::Config config = GoldenConfig();
  sim::Simulator sim;
  core::System system(&sim, config, base::RngSeed(1));
  RunTelemetry telemetry(&system);
  const core::RunMetrics metrics = system.Run();

  // The baseline workload commits transactions and installs updates
  // even over 5 seconds.
  EXPECT_GT(telemetry.response_seconds().count(), 0u);
  EXPECT_GT(telemetry.slack_at_commit_seconds().count(), 0u);
  EXPECT_GT(telemetry.update_age_at_install_seconds().count(), 0u);
  // Response histogram counts committed + aborted + tardy terminals in
  // the observation window; commits alone bound it from below.
  EXPECT_GE(telemetry.response_seconds().count(), metrics.txns_committed);
  // The sampler rode along: warm-up boundary pinned.
  EXPECT_DOUBLE_EQ(telemetry.sampler().warmup_end(), 1.0);
}

TEST(TelemetryTest, MatchesGoldenFile) {
  const std::string doc = ProduceDocument(GoldenConfig(), 1);

  if (std::getenv("STRIP_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(kGoldenPath, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << kGoldenPath;
    out << doc;
    GTEST_SKIP() << "golden file regenerated at " << kGoldenPath;
  }

  std::ifstream in(kGoldenPath, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << kGoldenPath
                  << " (regenerate with STRIP_UPDATE_GOLDEN=1)";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(doc, golden.str())
      << "telemetry bytes changed; if intentional, regenerate with "
         "STRIP_UPDATE_GOLDEN=1 and review the diff";
}

}  // namespace
}  // namespace strip::obs
