// JSON Schema validation of the telemetry contract.
//
// Two layers: unit tests of the validator subset itself, and the
// contract test — every telemetry document this suite can produce
// (uniprocessor and per-shard) must validate against
// docs/telemetry.schema.json, so the writer and the published schema
// cannot drift apart silently. The checked-in goldens are validated
// too, pinning the schema to the exact bytes under review.

#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/sharded_config.h"
#include "core/system.h"
#include "exp/experiment.h"
#include "obs/report/json.h"
#include "obs/report/schema.h"
#include "obs/telemetry.h"

namespace strip::obs::report {
namespace {

constexpr char kSchemaPath[] =
    STRIP_TEST_SOURCE_DIR "/../docs/telemetry.schema.json";

JsonValue ParseOrDie(const std::string& text, const std::string& what) {
  std::string error;
  const std::optional<JsonValue> value = ParseJson(text, &error);
  EXPECT_TRUE(value.has_value()) << what << ": " << error;
  return value.value_or(JsonValue{});
}

JsonValue LoadSchema() {
  std::ifstream in(kSchemaPath, std::ios::binary);
  EXPECT_TRUE(in) << kSchemaPath;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseOrDie(buffer.str(), kSchemaPath);
}

// --- validator unit tests --------------------------------------------------

TEST(SchemaValidatorTest, TypeAndRequiredChecks) {
  const JsonValue schema = ParseOrDie(
      "{\"type\": \"object\", \"required\": [\"a\"],"
      " \"properties\": {\"a\": {\"type\": \"number\"}}}",
      "schema");
  std::string error;
  EXPECT_TRUE(ValidateJsonSchema(schema, ParseOrDie("{\"a\": 1}", "doc"),
                                 &error))
      << error;
  EXPECT_FALSE(ValidateJsonSchema(schema, ParseOrDie("{}", "doc"), &error));
  EXPECT_NE(error.find("a"), std::string::npos) << error;
  EXPECT_FALSE(ValidateJsonSchema(
      schema, ParseOrDie("{\"a\": \"x\"}", "doc"), &error));
}

TEST(SchemaValidatorTest, IntegerTypeRejectsFractions) {
  const JsonValue schema =
      ParseOrDie("{\"type\": \"integer\", \"minimum\": 0}", "schema");
  std::string error;
  EXPECT_TRUE(ValidateJsonSchema(schema, ParseOrDie("3", "doc"), &error));
  EXPECT_FALSE(
      ValidateJsonSchema(schema, ParseOrDie("3.5", "doc"), &error));
  EXPECT_FALSE(ValidateJsonSchema(schema, ParseOrDie("-1", "doc"), &error));
}

TEST(SchemaValidatorTest, UnionTypesEnumAndConst) {
  const JsonValue schema = ParseOrDie(
      "{\"type\": \"object\", \"properties\": {"
      "\"n\": {\"type\": [\"number\", \"null\"]},"
      "\"p\": {\"enum\": [\"UF\", \"OD\"]},"
      "\"s\": {\"const\": \"v3\"}}}",
      "schema");
  std::string error;
  EXPECT_TRUE(ValidateJsonSchema(
      schema,
      ParseOrDie("{\"n\": null, \"p\": \"UF\", \"s\": \"v3\"}", "doc"),
      &error))
      << error;
  EXPECT_FALSE(ValidateJsonSchema(
      schema, ParseOrDie("{\"p\": \"XX\"}", "doc"), &error));
  EXPECT_FALSE(ValidateJsonSchema(
      schema, ParseOrDie("{\"s\": \"v2\"}", "doc"), &error));
}

TEST(SchemaValidatorTest, AdditionalPropertiesFalseCatchesDrift) {
  const JsonValue schema = ParseOrDie(
      "{\"type\": \"object\", \"additionalProperties\": false,"
      " \"properties\": {\"a\": {}}}",
      "schema");
  std::string error;
  EXPECT_TRUE(
      ValidateJsonSchema(schema, ParseOrDie("{\"a\": 1}", "doc"), &error));
  EXPECT_FALSE(ValidateJsonSchema(
      schema, ParseOrDie("{\"a\": 1, \"b\": 2}", "doc"), &error));
  EXPECT_NE(error.find("b"), std::string::npos) << error;
}

TEST(SchemaValidatorTest, ArrayItemsAndBounds) {
  const JsonValue schema = ParseOrDie(
      "{\"type\": \"array\", \"minItems\": 2, \"maxItems\": 2,"
      " \"items\": {\"type\": \"number\", \"maximum\": 10}}",
      "schema");
  std::string error;
  EXPECT_TRUE(
      ValidateJsonSchema(schema, ParseOrDie("[1, 2]", "doc"), &error));
  EXPECT_FALSE(
      ValidateJsonSchema(schema, ParseOrDie("[1]", "doc"), &error));
  EXPECT_FALSE(
      ValidateJsonSchema(schema, ParseOrDie("[1, 11]", "doc"), &error));
}

TEST(SchemaValidatorTest, UnknownKeywordIsAnErrorNotSilence) {
  // A schema using a keyword outside the implemented subset must be
  // rejected, otherwise an edit could silently turn validation off.
  const JsonValue schema =
      ParseOrDie("{\"type\": \"object\", \"patternProperties\": {}}",
                 "schema");
  std::string error;
  EXPECT_FALSE(
      ValidateJsonSchema(schema, ParseOrDie("{}", "doc"), &error));
  EXPECT_NE(error.find("patternProperties"), std::string::npos) << error;
}

// --- the telemetry contract ------------------------------------------------

std::string ProduceDocument(std::uint64_t seed) {
  core::Config config;
  config.sim_seconds = 5.0;
  config.warmup_seconds = 1.0;
  std::ostringstream out;
  exp::RunHook hook = [&out](core::System& system,
                             const exp::RunContext& context)
      -> exp::RunFinisher {
    RunTelemetry::Options options;
    options.seed = context.seed;
    auto telemetry = std::make_shared<RunTelemetry>(&system, options);
    return [telemetry, &out](const core::RunMetrics& metrics) {
      telemetry->WriteJson(out, metrics);
    };
  };
  exp::RunContext context;
  context.seed = seed;
  exp::RunOnce(config, seed, hook, context);
  return out.str();
}

TEST(TelemetrySchemaTest, FreshRunDocumentValidates) {
  const JsonValue schema = LoadSchema();
  std::string error;
  EXPECT_TRUE(ValidateJsonSchema(
      schema, ParseOrDie(ProduceDocument(1), "run telemetry"), &error))
      << error;
  EXPECT_TRUE(ValidateJsonSchema(
      schema, ParseOrDie(ProduceDocument(99), "run telemetry"), &error))
      << error;
}

TEST(TelemetrySchemaTest, CheckedInGoldensValidate) {
  const JsonValue schema = LoadSchema();
  for (const char* name :
       {"telemetry_golden.json", "determinism_telemetry_v4.json",
        "determinism_telemetry_v4.shard0.json",
        "determinism_telemetry_v4.shard1.json"}) {
    const std::string path =
        std::string(STRIP_TEST_SOURCE_DIR "/obs/testdata/") + name;
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    EXPECT_TRUE(
        ValidateJsonSchema(schema, ParseOrDie(buffer.str(), path), &error))
        << path << ": " << error;
  }
}

TEST(TelemetrySchemaTest, DriftIsCaught) {
  const JsonValue schema = LoadSchema();
  // Inject an unknown metric into an otherwise-valid document: the
  // additionalProperties: false contract must flag it.
  std::string doc = ProduceDocument(1);
  const std::string needle = "\"p_md\":";
  const std::size_t at = doc.find(needle);
  ASSERT_NE(at, std::string::npos);
  doc.insert(at, "\"mystery_metric\": 1,\n    ");
  std::string error;
  EXPECT_FALSE(ValidateJsonSchema(
      schema, ParseOrDie(doc, "perturbed telemetry"), &error));
  EXPECT_NE(error.find("mystery_metric"), std::string::npos) << error;
}

TEST(TelemetrySchemaTest, V4InterconnectKeysAreRequired) {
  const JsonValue schema = LoadSchema();
  const std::string doc = ProduceDocument(1);
  // The writer stamps the v4 schema id and every interconnect
  // robustness key, even on a uniprocessor run where they are zero.
  EXPECT_NE(doc.find("\"strip.telemetry/v4\""), std::string::npos);
  for (const char* key :
       {"remote_retries", "remote_timeouts", "remote_degraded_reads",
        "txns_remote_unavailable", "link_messages_lost",
        "partition_windows", "partition_seconds", "time_to_reconnect"}) {
    const std::string quoted = std::string("\"") + key + "\":";
    const std::size_t at = doc.find(quoted);
    ASSERT_NE(at, std::string::npos) << key;
    // Deleting the key must fail validation: the v4 contract lists all
    // of them as required, so a writer regression cannot drop one
    // silently.
    std::string gutted = doc;
    const std::size_t line_end = gutted.find('\n', at);
    ASSERT_NE(line_end, std::string::npos);
    std::size_t line_start = gutted.rfind('\n', at);
    ASSERT_NE(line_start, std::string::npos);
    gutted.erase(line_start, line_end - line_start);
    std::string error;
    EXPECT_FALSE(ValidateJsonSchema(
        schema, ParseOrDie(gutted, "gutted telemetry"), &error))
        << key;
    EXPECT_NE(error.find(key), std::string::npos) << error;
  }
}

}  // namespace
}  // namespace strip::obs::report
