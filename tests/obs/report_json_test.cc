// The report layer's JSON parser: a DOM boundary parser that must be
// exact on the documents this repo writes and unkillable on anything
// else. Malformed inputs produce a one-line "byte N" error, never a
// crash; object members keep document order so every downstream walk
// is deterministic.

#include <string>

#include <gtest/gtest.h>

#include "obs/report/json.h"

namespace strip::obs::report {
namespace {

JsonValue ParseOk(const std::string& text) {
  std::string error;
  const std::optional<JsonValue> value = ParseJson(text, &error);
  EXPECT_TRUE(value.has_value()) << text << " -> " << error;
  return value.value_or(JsonValue{});
}

void ExpectRejected(const std::string& text) {
  std::string error;
  EXPECT_FALSE(ParseJson(text, &error).has_value()) << text;
  EXPECT_NE(error.find("byte"), std::string::npos) << error;
}

TEST(ReportJsonTest, ParsesScalars) {
  EXPECT_TRUE(ParseOk("null").is_null());
  EXPECT_TRUE(ParseOk("true").bool_value);
  EXPECT_FALSE(ParseOk("false").bool_value);
  EXPECT_DOUBLE_EQ(ParseOk("-12.5e2").number_value, -1250.0);
  EXPECT_EQ(ParseOk("\"hi\\n\\\"there\\\"\"").string_value,
            "hi\n\"there\"");
}

TEST(ReportJsonTest, ParsesUnicodeEscapes) {
  // \u0041 = 'A'; two-byte and three-byte UTF-8 outputs as well.
  EXPECT_EQ(ParseOk("\"\\u0041\"").string_value, "A");
  EXPECT_EQ(ParseOk("\"\\u00e9\"").string_value, "\xc3\xa9");
  EXPECT_EQ(ParseOk("\"\\u20ac\"").string_value, "\xe2\x82\xac");
}

TEST(ReportJsonTest, ObjectKeepsDocumentOrder) {
  const JsonValue doc = ParseOk("{\"z\": 1, \"a\": 2, \"m\": 3}");
  ASSERT_EQ(doc.members.size(), 3u);
  EXPECT_EQ(doc.members[0].first, "z");
  EXPECT_EQ(doc.members[1].first, "a");
  EXPECT_EQ(doc.members[2].first, "m");
  EXPECT_DOUBLE_EQ(doc.NumberOr("a", -1), 2.0);
  EXPECT_DOUBLE_EQ(doc.NumberOr("missing", -1), -1.0);
}

TEST(ReportJsonTest, NestedArraysAndLookupHelpers) {
  const JsonValue doc = ParseOk(
      "{\"runs\": [[1, 2], [3]], \"name\": \"UF\", \"ok\": true}");
  const JsonValue* runs = doc.Find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->items.size(), 2u);
  EXPECT_EQ(runs->items[0].items.size(), 2u);
  EXPECT_DOUBLE_EQ(runs->items[1].items[0].number_value, 3.0);
  EXPECT_EQ(doc.StringOr("name", ""), "UF");
  EXPECT_TRUE(doc.BoolOr("ok", false));
  EXPECT_EQ(doc.Find("absent"), nullptr);
}

TEST(ReportJsonTest, RoundTripsFull17DigitDoubles) {
  // %.17g is the repo-wide number contract; the parser must not lose
  // precision on what the writers emit.
  const JsonValue doc = ParseOk("{\"v\": 0.12508999999999999}");
  EXPECT_DOUBLE_EQ(doc.NumberOr("v", 0), 0.12508999999999999);
}

TEST(ReportJsonTest, RejectsMalformedInput) {
  ExpectRejected("");
  ExpectRejected("{");
  ExpectRejected("[1, 2");
  ExpectRejected("{\"a\": }");
  ExpectRejected("{\"a\" 1}");
  ExpectRejected("{a: 1}");
  ExpectRejected("[1,]");
  ExpectRejected("tru");
  ExpectRejected("\"unterminated");
  ExpectRejected("\"bad escape \\q\"");
  ExpectRejected("0x10");
  ExpectRejected("NaN");
}

TEST(ReportJsonTest, RejectsTrailingGarbage) {
  ExpectRejected("{} extra");
  ExpectRejected("1 2");
}

TEST(ReportJsonTest, RejectsRunawayNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  ExpectRejected(deep);
}

TEST(ReportJsonTest, ErrorNamesTheByteOffset) {
  std::string error;
  EXPECT_FALSE(ParseJson("{\"a\": 1, !}", &error).has_value());
  EXPECT_EQ(error.rfind("byte 9", 0), 0u) << error;
}

}  // namespace
}  // namespace strip::obs::report
