// LatencyHistogram vs an exact sorted-vector reference.
//
// The histogram trades exactness for O(1) recording: any quantile must
// land within half a geometric bucket of the true order statistic. The
// big test draws 100k samples from a latency-shaped (log-normal-ish)
// distribution and checks p50/p90/p99 against the exact answer under
// that bound.

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "obs/latency_histogram.h"

namespace strip::obs {
namespace {

// Exact nearest-rank quantile of a sorted sample.
double ExactQuantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

TEST(LatencyHistogramTest, EmptyHistogramIsZero) {
  LatencyHistogram h(1e-4, 100.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(LatencyHistogramTest, SingleSampleAllQuantiles) {
  LatencyHistogram h(1e-4, 100.0);
  h.Add(0.25);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.25);
  // Quantiles clamp to the exact observed range: a single sample is
  // reported exactly.
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.25);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.25);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 0.25);
}

TEST(LatencyHistogramTest, UnderflowAndOverflowAreCounted) {
  LatencyHistogram h(1e-3, 1.0);
  h.Add(1e-6);   // below min
  h.Add(0.5);    // in range
  h.Add(100.0);  // above max
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  // Extreme quantiles come back as the exact observed extremes.
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 1e-6);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(h.min_sample(), 1e-6);
  EXPECT_DOUBLE_EQ(h.max_sample(), 100.0);
}

TEST(LatencyHistogramTest, BucketEdgesAreGeometric) {
  LatencyHistogram h(1e-2, 10.0, 10);
  // 3 decades at 10 buckets each => 30 geometric + underflow + overflow.
  EXPECT_EQ(h.bucket_count(), 32u);
  EXPECT_DOUBLE_EQ(h.bucket_upper_edge(0), 1e-2);
  const double ratio =
      h.bucket_upper_edge(2) / h.bucket_upper_edge(1);
  EXPECT_NEAR(ratio, std::pow(10.0, 0.1), 1e-12);
}

TEST(LatencyHistogramTest, QuantilesMatchSortedReferenceOn100kSamples) {
  // Latency-shaped workload: a log-normal body plus a uniform tail,
  // spanning ~5 decades inside the histogram range.
  std::mt19937_64 rng(20260806);
  std::lognormal_distribution<double> body(std::log(0.02), 1.2);
  std::uniform_real_distribution<double> tail(1.0, 40.0);
  std::bernoulli_distribution is_tail(0.02);

  LatencyHistogram h(1e-4, 100.0, 36);
  std::vector<double> reference;
  reference.reserve(100'000);
  for (int i = 0; i < 100'000; ++i) {
    const double sample = is_tail(rng) ? tail(rng) : body(rng);
    h.Add(sample);
    reference.push_back(sample);
  }
  std::sort(reference.begin(), reference.end());

  ASSERT_EQ(h.count(), 100'000u);
  const double bucket_ratio = std::pow(10.0, 1.0 / 36.0);
  for (double q : {0.5, 0.9, 0.99}) {
    const double exact = ExactQuantile(reference, q);
    const double approx = h.Quantile(q);
    // Within one bucket width of the exact order statistic (the
    // midpoint guarantee is half a bucket; one full width leaves room
    // for the rank landing at a bucket edge).
    EXPECT_GE(approx, exact / bucket_ratio)
        << "q=" << q << " exact=" << exact << " approx=" << approx;
    EXPECT_LE(approx, exact * bucket_ratio)
        << "q=" << q << " exact=" << exact << " approx=" << approx;
  }

  // Mean is exact (tracked as a running sum, not from buckets).
  double sum = 0;
  for (double s : reference) sum += s;
  EXPECT_NEAR(h.mean(), sum / 100'000.0, 1e-9);
}

TEST(LatencyHistogramTest, MeanIsExactFloatingDivision) {
  // Regression for the -Wconversion pass: mean() divides the double
  // sum by the integer count; the explicit conversion must behave as
  // exact IEEE division, bit for bit.
  LatencyHistogram h(1e-4, 100.0);
  h.Add(0.125);
  h.Add(0.25);
  h.Add(0.5);
  EXPECT_EQ(h.mean(), (0.125 + 0.25 + 0.5) / 3.0);
  EXPECT_EQ(h.count(), 3u);
}

TEST(LatencyHistogramTest, QuantileMonotonicInQ) {
  std::mt19937_64 rng(99);
  std::exponential_distribution<double> dist(4.0);
  LatencyHistogram h(1e-4, 100.0);
  for (int i = 0; i < 10'000; ++i) h.Add(dist(rng) + 1e-4);
  double previous = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const double value = h.Quantile(q);
    EXPECT_GE(value, previous) << "q=" << q;
    previous = value;
  }
}

// Sparse-dump round trip: FromBuckets must rebuild a histogram whose
// every observable (count, sum, quantiles, bucket contents) matches
// the original.
TEST(LatencyHistogramTest, FromBucketsRoundTrip) {
  std::mt19937_64 rng(7);
  std::lognormal_distribution<double> dist(-2.0, 1.0);
  LatencyHistogram original(1e-4, 100.0);
  for (int i = 0; i < 20'000; ++i) original.Add(dist(rng));

  std::vector<std::pair<std::size_t, std::uint64_t>> sparse;
  for (std::size_t i = 0; i < original.bucket_count(); ++i) {
    if (original.bucket_value(i) != 0) {
      sparse.emplace_back(i, original.bucket_value(i));
    }
  }
  const std::optional<LatencyHistogram> rebuilt =
      LatencyHistogram::FromBuckets(
          original.min(), original.max(), original.buckets_per_decade(),
          sparse, original.mean(), original.min_sample(),
          original.max_sample());
  ASSERT_TRUE(rebuilt.has_value());
  EXPECT_EQ(rebuilt->count(), original.count());
  EXPECT_DOUBLE_EQ(rebuilt->mean(), original.mean());
  for (double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(rebuilt->Quantile(q), original.Quantile(q))
        << "q=" << q;
  }
}

TEST(LatencyHistogramTest, FromBucketsRejectsBadShape) {
  EXPECT_FALSE(
      LatencyHistogram::FromBuckets(0.0, 100.0, 36, {}, 0, 0, 0)
          .has_value());
  EXPECT_FALSE(
      LatencyHistogram::FromBuckets(1e-4, 100.0, 0, {}, 0, 0, 0)
          .has_value());
  // Bucket index beyond the layout's bucket count.
  EXPECT_FALSE(LatencyHistogram::FromBuckets(1e-4, 100.0, 36,
                                             {{1'000'000, 1}}, 0.5, 0.5,
                                             0.5)
                   .has_value());
}

// The merge contract that cluster-level percentiles rest on: merging
// per-shard histograms is exactly equivalent to one histogram having
// seen every shard's samples.
TEST(LatencyHistogramTest, MergeMatchesSingleHistogramReference) {
  std::mt19937_64 rng(21);
  std::lognormal_distribution<double> fast(-3.0, 0.6);
  std::lognormal_distribution<double> slow(-1.0, 0.8);
  LatencyHistogram shard0(1e-4, 100.0);
  LatencyHistogram shard1(1e-4, 100.0);
  LatencyHistogram reference(1e-4, 100.0);
  for (int i = 0; i < 10'000; ++i) {
    const double f = fast(rng);
    const double s = slow(rng);
    shard0.Add(f);
    shard1.Add(s);
    reference.Add(f);
    reference.Add(s);
  }
  ASSERT_TRUE(shard0.Merge(shard1));
  EXPECT_EQ(shard0.count(), reference.count());
  // sum adds two sub-sums where the reference interleaved: identical
  // up to floating-point association, not bit-exact.
  EXPECT_NEAR(shard0.sum(), reference.sum(),
              1e-12 * reference.sum());
  EXPECT_DOUBLE_EQ(shard0.min_sample(), reference.min_sample());
  EXPECT_DOUBLE_EQ(shard0.max_sample(), reference.max_sample());
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_DOUBLE_EQ(shard0.Quantile(q), reference.Quantile(q))
        << "q=" << q;
  }
}

TEST(LatencyHistogramTest, MergeEmptySidesAreNoOps) {
  LatencyHistogram h(1e-4, 100.0);
  h.Add(0.25);
  LatencyHistogram empty(1e-4, 100.0);
  ASSERT_TRUE(h.Merge(empty));
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.25);
  // Empty absorbing non-empty works too.
  ASSERT_TRUE(empty.Merge(h));
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 0.25);
}

TEST(LatencyHistogramTest, MergeRefusesLayoutMismatch) {
  LatencyHistogram a(1e-4, 100.0, 36);
  a.Add(0.25);
  LatencyHistogram coarser(1e-4, 100.0, 16);
  coarser.Add(0.5);
  LatencyHistogram shifted(1e-3, 100.0, 36);
  shifted.Add(0.5);
  EXPECT_FALSE(a.Merge(coarser));
  EXPECT_FALSE(a.Merge(shifted));
  // Unchanged on refusal.
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.Quantile(0.5), 0.25);
}

}  // namespace
}  // namespace strip::obs
