// Artifact loaders: each of the three families (telemetry, sweep
// cell, Google-Benchmark JSON) parses into the common typed model,
// malformed documents fail with one-line errors naming the file, and
// ClassifyArtifact routes paths to the right loader.

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/report/artifact.h"

namespace strip::obs::report {
namespace {

std::string WriteTemp(const std::string& name, const std::string& body) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  EXPECT_TRUE(out) << path;
  out << body;
  return path;
}

// A minimal but structurally faithful telemetry document.
std::string TelemetryBody(int shard, int shards, double response_p99) {
  char buffer[2048];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\n"
      "  \"schema\": \"strip.telemetry/v3\",\n"
      "  \"run\": {\"policy\": \"OD\", \"staleness\": \"MA\", \"seed\": 7,"
      " \"shard\": %d, \"shards\": %d, \"sim_seconds\": 30,"
      " \"warmup_seconds\": 5, \"lambda_t\": 10, \"lambda_u\": 200,"
      " \"alpha\": 0.5},\n"
      "  \"phases\": {\"warmup_end\": 5, \"run_end\": 30},\n"
      "  \"series\": {\"interval_seconds\": 1, \"time\": []},\n"
      "  \"histograms\": {\"response_seconds\": {\"count\": 3,"
      " \"mean\": 0.2, \"min\": 0.1, \"max\": 0.4, \"p50\": 0.2,"
      " \"p90\": 0.4, \"p99\": %.17g, \"underflow\": 0, \"overflow\": 0,"
      " \"range\": [0.0001, 100], \"buckets_per_decade\": 16,"
      " \"buckets\": [[1, 2], [5, 1]]}},\n"
      "  \"stale_reads_seen\": 11,\n"
      "  \"metrics\": {\"txns_committed\": 42, \"p_md\": 0.125,"
      " \"outage_recovery_seconds\": null, \"response_p99\": %.17g}\n"
      "}\n",
      shard, shards, response_p99, response_p99);
  return buffer;
}

TEST(ReportArtifactTest, LoadsTelemetryDoc) {
  const std::string path =
      WriteTemp("artifact_t1.json", TelemetryBody(0, 1, 0.4));
  std::string error;
  const auto doc = LoadTelemetryDoc(path, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->policy, "OD");
  EXPECT_EQ(doc->staleness, "MA");
  EXPECT_EQ(doc->seed, 7u);
  EXPECT_EQ(doc->shards, 1);
  EXPECT_DOUBLE_EQ(doc->lambda_u, 200.0);
  EXPECT_EQ(doc->stale_reads_seen, 11u);
  EXPECT_DOUBLE_EQ(FindMetric(doc->metrics, "txns_committed").value(), 42);
  // JSON null carries through as an absent value, not 0.
  EXPECT_FALSE(
      FindMetric(doc->metrics, "outage_recovery_seconds").has_value());
  const HistogramData* h = doc->FindHistogram("response_seconds");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 3u);
  EXPECT_EQ(h->buckets_per_decade, 16);
  ASSERT_EQ(h->buckets.size(), 2u);
  EXPECT_EQ(h->buckets[0].first, 1u);
  EXPECT_EQ(h->buckets[0].second, 2u);
}

TEST(ReportArtifactTest, RejectsWrongSchema) {
  const std::string path = WriteTemp(
      "artifact_bad_schema.json",
      "{\"schema\": \"strip.telemetry/v2\", \"run\": {}, \"metrics\": {}}");
  std::string error;
  EXPECT_FALSE(LoadTelemetryDoc(path, &error).has_value());
  EXPECT_NE(error.find(path), std::string::npos) << error;
}

TEST(ReportArtifactTest, RejectsMalformedJsonWithFileName) {
  const std::string path = WriteTemp("artifact_garbage.json", "{nope");
  std::string error;
  EXPECT_FALSE(LoadTelemetryDoc(path, &error).has_value());
  EXPECT_NE(error.find(path), std::string::npos) << error;
  EXPECT_NE(error.find("byte"), std::string::npos) << error;
}

TEST(ReportArtifactTest, LoadsSweepCellDocAndMeans) {
  const std::string body =
      "{\n"
      "  \"schema\": \"strip.sweep-cell/v1\",\n"
      "  \"policy\": \"UF\",\n"
      "  \"x_name\": \"lambda_u\",\n"
      "  \"x_value\": 200,\n"
      "  \"x_index\": 3,\n"
      "  \"replications\": 2,\n"
      "  \"base_seed\": 42,\n"
      "  \"timed_out\": false,\n"
      "  \"runs\": [\n"
      "    {\"p_md\": 0.1, \"outage_recovery_seconds\": null},\n"
      "    {\"p_md\": 0.3, \"outage_recovery_seconds\": null}\n"
      "  ]\n}\n";
  const std::string path = WriteTemp("artifact_cell.json", body);
  std::string error;
  const auto cell = LoadSweepCellDoc(path, &error);
  ASSERT_TRUE(cell.has_value()) << error;
  EXPECT_EQ(cell->policy, "UF");
  EXPECT_EQ(cell->x_index, 3u);
  ASSERT_EQ(cell->runs.size(), 2u);
  EXPECT_DOUBLE_EQ(cell->Mean("p_md").value(), 0.2);
  // Null in every replication -> no mean, not zero.
  EXPECT_FALSE(cell->Mean("outage_recovery_seconds").has_value());
  EXPECT_FALSE(cell->Mean("no_such_metric").has_value());
}

constexpr char kBenchBody[] =
    "{\n"
    "  \"context\": {\"strip_build_type\": \"release\","
    " \"strip_lto\": \"on\"},\n"
    "  \"benchmarks\": [\n"
    "    {\"name\": \"BM_Sim/1\", \"run_type\": \"iteration\","
    " \"real_time\": 120, \"cpu_time\": 100, \"time_unit\": \"us\"},\n"
    "    {\"name\": \"BM_Sim/1\", \"run_type\": \"iteration\","
    " \"real_time\": 110, \"cpu_time\": 90, \"time_unit\": \"us\"},\n"
    "    {\"name\": \"BM_Sim/1\", \"run_type\": \"aggregate\","
    " \"aggregate_name\": \"mean\", \"real_time\": 115,"
    " \"cpu_time\": 95, \"time_unit\": \"us\"},\n"
    "    {\"name\": \"BM_Queue\", \"run_type\": \"iteration\","
    " \"real_time\": 2, \"cpu_time\": 1.5, \"time_unit\": \"ms\"}\n"
    "  ]\n}\n";

TEST(ReportArtifactTest, LoadsBenchDocMinOfN) {
  const std::string path = WriteTemp("artifact_bench.json", kBenchBody);
  std::string error;
  const auto doc = LoadBenchDoc(path, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->build_type, "release");
  EXPECT_EQ(doc->lto, "on");
  ASSERT_EQ(doc->entries.size(), 2u);
  const BenchEntry* sim = doc->FindEntry("BM_Sim/1");
  ASSERT_NE(sim, nullptr);
  // Min across the two iteration rows; aggregate rows ignored. Units
  // normalized to nanoseconds.
  EXPECT_DOUBLE_EQ(sim->cpu_time_ns, 90e3);
  EXPECT_DOUBLE_EQ(sim->real_time_ns, 110e3);
  EXPECT_EQ(sim->samples, 2);
  EXPECT_EQ(sim->family, "BM_Sim");
  const BenchEntry* queue = doc->FindEntry("BM_Queue");
  ASSERT_NE(queue, nullptr);
  EXPECT_DOUBLE_EQ(queue->cpu_time_ns, 1.5e6);
}

TEST(ReportArtifactTest, ClassifiesEachFamily) {
  const std::string telemetry =
      WriteTemp("classify_t.json", TelemetryBody(0, 1, 0.4));
  const std::string bench = WriteTemp("classify_b.json", kBenchBody);
  std::string error;
  EXPECT_EQ(ClassifyArtifact(telemetry, &error).value_or(ArtifactKind::kBench),
            ArtifactKind::kTelemetry);
  EXPECT_EQ(ClassifyArtifact(bench, &error).value_or(ArtifactKind::kTelemetry),
            ArtifactKind::kBench);
  EXPECT_EQ(
      ClassifyArtifact(::testing::TempDir(), &error).value_or(
          ArtifactKind::kBench),
      ArtifactKind::kSweepDir);
  EXPECT_FALSE(
      ClassifyArtifact(::testing::TempDir() + "no_such_file", &error)
          .has_value());
}

TEST(ReportArtifactTest, LoadsSweepDirWithShardTelemetry) {
  const std::string dir = ::testing::TempDir() + "report_sweepdir";
  std::remove((dir + "/cell_UF_00.json").c_str());
  std::remove((dir + "/OD_00.json.shard0").c_str());
  std::remove((dir + "/OD_00.json.shard1").c_str());
  ASSERT_EQ(0, std::system(("mkdir -p " + dir).c_str()));

  const std::string cell =
      "{\"schema\": \"strip.sweep-cell/v1\", \"policy\": \"UF\","
      " \"x_name\": \"lambda_u\", \"x_value\": 100, \"x_index\": 0,"
      " \"replications\": 1, \"base_seed\": 1, \"timed_out\": false,"
      " \"runs\": [{\"p_md\": 0.5}]}";
  {
    std::ofstream out(dir + "/cell_UF_00.json");
    out << cell;
  }
  {
    std::ofstream s0(dir + "/OD_00.json.shard0");
    s0 << TelemetryBody(0, 2, 0.3);
    std::ofstream s1(dir + "/OD_00.json.shard1");
    s1 << TelemetryBody(1, 2, 0.5);
  }

  std::string error;
  const auto data = LoadSweepDir(dir, &error);
  ASSERT_TRUE(data.has_value()) << error;
  ASSERT_EQ(data->cells.size(), 1u);
  EXPECT_EQ(data->cells[0].policy, "UF");
  EXPECT_EQ(data->x_name, "lambda_u");
  ASSERT_EQ(data->shard_groups.size(), 1u);
  EXPECT_EQ(data->shard_groups[0].label, "OD_00");
  ASSERT_EQ(data->shard_groups[0].shards.size(), 2u);
  EXPECT_EQ(data->shard_groups[0].shards[0].shard, 0);
  EXPECT_EQ(data->shard_groups[0].shards[1].shard, 1);
}

TEST(ReportArtifactTest, SweepDirWithNoArtifactsFails) {
  const std::string dir = ::testing::TempDir() + "report_emptydir";
  ASSERT_EQ(0, std::system(("mkdir -p " + dir).c_str()));
  std::string error;
  EXPECT_FALSE(LoadSweepDir(dir, &error).has_value());
  EXPECT_NE(error.find("no cell_"), std::string::npos) << error;
}

}  // namespace
}  // namespace strip::obs::report
