// FlightRecorder: anomaly predicates, the trip latch, the bounded
// ring, the dump format, and the golden file.
//
// The golden test byte-compares a dump from a fixed (config, seed) run
// with a fixed recorder configuration against
// tests/obs/testdata/flight_golden.txt. Regenerate with
//   STRIP_UPDATE_GOLDEN=1 ./build/tests/flight_recorder_test

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/system.h"
#include "exp/experiment.h"
#include "obs/trace/flight_recorder.h"
#include "obs/trace/trace_analysis.h"
#include "sim/simulator.h"

namespace strip::obs::trace {
namespace {

constexpr char kGoldenPath[] =
    STRIP_TEST_SOURCE_DIR "/obs/testdata/flight_golden.txt";

std::unique_ptr<txn::Transaction> MakeTxn(std::uint64_t id,
                                          txn::TxnOutcome outcome,
                                          int stale_reads) {
  txn::Transaction::Params p;
  p.id = base::TxnId(id);
  p.cls = txn::TxnClass::kLowValue;
  p.value = 1.0;
  p.arrival_time = 0.0;
  p.deadline = 1.0;
  p.computation_instructions = 1000;
  auto t = std::make_unique<txn::Transaction>(p);
  t->set_outcome(outcome);
  for (int i = 0; i < stale_reads; ++i) t->MarkStaleRead();
  return t;
}

db::Update MakeUpdate(std::uint64_t id) {
  db::Update u;
  u.id = base::UpdateId(id);
  u.object = {db::ObjectClass::kLowImportance,
              static_cast<int>(id % 100)};
  u.generation_time = 0.5;
  return u;
}

TEST(FlightRecorderTest, DeadlineMissBurstTripsInsideWindow) {
  FlightRecorderOptions options;
  options.miss_burst_count = 3;
  options.miss_burst_window_seconds = 1.0;
  FlightRecorder recorder(options);
  // Two misses spread beyond the window: no trip.
  recorder.OnTransactionTerminal(
      0.1, *MakeTxn(1, txn::TxnOutcome::kMissedDeadline, 0));
  recorder.OnTransactionTerminal(
      2.0, *MakeTxn(2, txn::TxnOutcome::kMissedDeadline, 0));
  EXPECT_FALSE(recorder.tripped());
  // Two more inside one second of the last: burst of three.
  recorder.OnTransactionTerminal(
      2.4, *MakeTxn(3, txn::TxnOutcome::kInfeasible, 0));
  EXPECT_FALSE(recorder.tripped());
  recorder.OnTransactionTerminal(
      2.8, *MakeTxn(4, txn::TxnOutcome::kMissedDeadline, 0));
  ASSERT_TRUE(recorder.tripped());
  EXPECT_STREQ(recorder.trip_predicate(), "deadline-miss-burst");
  EXPECT_DOUBLE_EQ(recorder.trip_time(), 2.8);
}

TEST(FlightRecorderTest, CommittedTerminalsDoNotCountTowardBurst) {
  FlightRecorderOptions options;
  options.miss_burst_count = 2;
  FlightRecorder recorder(options);
  for (int i = 0; i < 10; ++i) {
    recorder.OnTransactionTerminal(
        0.1 * i, *MakeTxn(i, txn::TxnOutcome::kCommitted, 0));
  }
  EXPECT_FALSE(recorder.tripped());
}

TEST(FlightRecorderTest, StaleFractionTripsOnceWindowIsFull) {
  FlightRecorderOptions options;
  options.stale_window = 4;
  options.stale_fraction = 0.5;
  options.miss_burst_count = 1000;  // keep the other predicate quiet
  FlightRecorder recorder(options);
  // Three stale commits: window not yet full, no trip.
  for (int i = 0; i < 3; ++i) {
    recorder.OnTransactionTerminal(
        0.1 * i, *MakeTxn(i, txn::TxnOutcome::kCommitted, 1));
  }
  EXPECT_FALSE(recorder.tripped());
  recorder.OnTransactionTerminal(
      0.4, *MakeTxn(9, txn::TxnOutcome::kCommitted, 1));
  ASSERT_TRUE(recorder.tripped());
  EXPECT_STREQ(recorder.trip_predicate(), "stale-fraction");
}

TEST(FlightRecorderTest, UqDepthSpikeCountsDistinctQueuedUpdates) {
  FlightRecorderOptions options;
  options.uq_depth_threshold = 3;
  FlightRecorder recorder(options);
  recorder.OnUpdateEnqueued(0.1, MakeUpdate(1));
  recorder.OnUpdateEnqueued(0.2, MakeUpdate(2));
  // Install drains one: depth back to 1.
  recorder.OnUpdateInstalled(0.3, MakeUpdate(1), nullptr);
  recorder.OnUpdateEnqueued(0.4, MakeUpdate(3));
  EXPECT_FALSE(recorder.tripped());
  recorder.OnUpdateEnqueued(0.5, MakeUpdate(4));
  ASSERT_TRUE(recorder.tripped());
  EXPECT_STREQ(recorder.trip_predicate(), "uq-depth-spike");
  EXPECT_DOUBLE_EQ(recorder.trip_time(), 0.5);
}

core::SystemObserver::FaultWindowInfo OutageWindow(bool begin) {
  core::SystemObserver::FaultWindowInfo info;
  info.kind = "outage";
  info.label = "outage@1+1:speedup=4";
  info.begin = begin;
  info.start = 1.0;
  info.end = 2.0;
  return info;
}

TEST(FlightRecorderTest, OutageRecoveryTripsWhenBacklogLingers) {
  FlightRecorderOptions options;
  options.outage_recovery_deadline_seconds = 5.0;
  options.outage_recovery_depth = 2;
  FlightRecorder recorder(options);
  for (std::uint64_t id = 1; id <= 5; ++id) {
    recorder.OnUpdateEnqueued(1.0 + 0.01 * static_cast<double>(id),
                              MakeUpdate(id));
  }
  recorder.OnFaultWindow(1.0, OutageWindow(true));
  recorder.OnFaultWindow(2.0, OutageWindow(false));  // arms the watch
  EXPECT_FALSE(recorder.tripped());
  // Any event past the 2.0 + 5.0 deadline with depth still above the
  // threshold trips the predicate — even an install that would have
  // drained the queue below it a moment later.
  recorder.OnUpdateInstalled(8.0, MakeUpdate(1), nullptr);
  ASSERT_TRUE(recorder.tripped());
  EXPECT_STREQ(recorder.trip_predicate(), "outage-recovery");
  EXPECT_STREQ(recorder.trip_window(), "outage@1+1:speedup=4");
  EXPECT_DOUBLE_EQ(recorder.trip_time(), 8.0);
  // The dump header names the tripping window.
  std::ostringstream dump;
  recorder.DumpTo(dump);
  EXPECT_NE(dump.str().find("trip=outage-recovery"), std::string::npos);
  EXPECT_NE(dump.str().find("window=outage@1+1:speedup=4"),
            std::string::npos);
}

TEST(FlightRecorderTest, OutageRecoveryDisarmsOnceTheQueueDrains) {
  FlightRecorderOptions options;
  options.outage_recovery_deadline_seconds = 5.0;
  options.outage_recovery_depth = 2;
  FlightRecorder recorder(options);
  for (std::uint64_t id = 1; id <= 5; ++id) {
    recorder.OnUpdateEnqueued(1.0 + 0.01 * static_cast<double>(id),
                              MakeUpdate(id));
  }
  recorder.OnFaultWindow(1.0, OutageWindow(true));
  recorder.OnFaultWindow(2.0, OutageWindow(false));
  // Drain to the threshold inside the deadline: the watch clears.
  recorder.OnUpdateInstalled(3.0, MakeUpdate(1), nullptr);
  recorder.OnUpdateInstalled(3.5, MakeUpdate(2), nullptr);
  recorder.OnUpdateInstalled(4.0, MakeUpdate(3), nullptr);
  EXPECT_FALSE(recorder.tripped());
  // Well past the deadline, still no trip.
  recorder.OnUpdateEnqueued(50.0, MakeUpdate(6));
  EXPECT_FALSE(recorder.tripped());
  EXPECT_EQ(recorder.trip_window(), nullptr);
}

TEST(FlightRecorderTest, TripLatchesAndFreezesTheWindow) {
  FlightRecorderOptions options;
  options.uq_depth_threshold = 1;
  FlightRecorder recorder(options);
  recorder.OnUpdateEnqueued(0.1, MakeUpdate(1));
  ASSERT_TRUE(recorder.tripped());
  const std::uint64_t seen = recorder.events_seen();
  std::ostringstream before;
  recorder.DumpTo(before);
  // Later events are ignored: the window is a post-mortem snapshot.
  recorder.OnUpdateEnqueued(0.2, MakeUpdate(2));
  recorder.OnTransactionTerminal(
      0.3, *MakeTxn(1, txn::TxnOutcome::kCommitted, 0));
  EXPECT_EQ(recorder.events_seen(), seen);
  std::ostringstream after;
  recorder.DumpTo(after);
  EXPECT_EQ(before.str(), after.str());
}

TEST(FlightRecorderTest, RingKeepsOnlyTheLastCapacityEvents) {
  FlightRecorderOptions options;
  options.capacity = 4;
  options.armed = false;
  FlightRecorder recorder(options);
  for (int i = 0; i < 10; ++i) {
    recorder.OnUpdateArrival(0.1 * i, MakeUpdate(i));
  }
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.events_seen(), 10u);
  std::ostringstream out;
  recorder.DumpTo(out);
  // Oldest retained first: updates 6..9.
  const std::string dump = out.str();
  EXPECT_EQ(dump.find(",5,"), std::string::npos);
  std::size_t at6 = dump.find(",6,");
  std::size_t at9 = dump.find(",9,");
  EXPECT_NE(at6, std::string::npos);
  EXPECT_NE(at9, std::string::npos);
  EXPECT_LT(at6, at9);
  EXPECT_NE(dump.find("trip=none"), std::string::npos);
}

TEST(FlightRecorderTest, DisarmedRecorderNeverTrips) {
  FlightRecorderOptions options;
  options.uq_depth_threshold = 1;
  options.armed = false;
  FlightRecorder recorder(options);
  for (int i = 0; i < 5; ++i) {
    recorder.OnUpdateEnqueued(0.1 * i, MakeUpdate(i));
  }
  EXPECT_FALSE(recorder.tripped());
}

TEST(FlightRecorderTest, DumpRoundTripsThroughTheParser) {
  FlightRecorderOptions options;
  options.uq_depth_threshold = 2;
  FlightRecorder recorder(options);
  recorder.OnUpdateArrival(0.1, MakeUpdate(1));
  recorder.OnUpdateEnqueued(0.15, MakeUpdate(1));
  recorder.OnTransactionTerminal(
      0.2, *MakeTxn(5, txn::TxnOutcome::kCommitted, 0));
  recorder.OnUpdateEnqueued(0.3, MakeUpdate(2));
  ASSERT_TRUE(recorder.tripped());
  std::ostringstream out;
  recorder.DumpTo(out);

  std::istringstream in(out.str());
  std::string error;
  const std::optional<ParsedTrace> parsed = ParseFlightDump(in, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->trip_predicate, "uq-depth-spike");
  EXPECT_DOUBLE_EQ(parsed->trip_time, 0.3);
  ASSERT_EQ(parsed->events.size(), 4u);
  EXPECT_EQ(parsed->events[0].kind, "update-arrival");
  EXPECT_EQ(parsed->events[0].update, 1u);
  EXPECT_EQ(parsed->events[0].object, "low:1");
  EXPECT_EQ(parsed->events[2].kind, "txn-terminal");
  EXPECT_EQ(parsed->events[2].txn, 5u);
  EXPECT_EQ(parsed->events[2].detail, "committed");
}

// The golden run: an overloaded transaction stream under UF trips the
// deadline-miss-burst predicate; the retained window's bytes are a
// constant of (Config, seed, recorder options).
core::Config GoldenConfig() {
  core::Config config;
  config.policy = core::PolicyKind::kUpdateFirst;
  config.sim_seconds = 5.0;
  config.warmup_seconds = 0.0;
  config.lambda_t = 60.0;
  return config;
}

std::string ProduceDump(const core::Config& config, std::uint64_t seed) {
  std::ostringstream out;
  FlightRecorderOptions options;
  options.capacity = 256;
  exp::RunHook hook = [&out, options](
                          core::System& system,
                          const exp::RunContext&) -> exp::RunFinisher {
    auto recorder = std::make_shared<FlightRecorder>(options);
    system.AddObserver(recorder.get());
    return [recorder, &out](const core::RunMetrics&) {
      recorder->DumpTo(out);
    };
  };
  exp::RunContext context;
  context.seed = seed;
  exp::RunOnce(config, seed, hook, context);
  return out.str();
}

TEST(FlightRecorderTest, OverloadRunTripsAndMatchesGoldenFile) {
  const std::string dump = ProduceDump(GoldenConfig(), 3);
  EXPECT_EQ(dump.rfind("# strip-flight v1 trip=deadline-miss-burst", 0), 0u)
      << dump.substr(0, 80);
  EXPECT_EQ(dump, ProduceDump(GoldenConfig(), 3)) << "dump not deterministic";

  if (std::getenv("STRIP_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(kGoldenPath, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << kGoldenPath;
    out << dump;
    GTEST_SKIP() << "golden file regenerated at " << kGoldenPath;
  }

  std::ifstream in(kGoldenPath, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << kGoldenPath
                  << " (regenerate with STRIP_UPDATE_GOLDEN=1)";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(dump, golden.str())
      << "flight dump bytes changed; if intentional, regenerate with "
         "STRIP_UPDATE_GOLDEN=1 and review the diff";
}

}  // namespace
}  // namespace strip::obs::trace
