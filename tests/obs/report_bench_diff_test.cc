// The perf-regression gate: a synthetic 2× slowdown must be rejected,
// the baseline against itself must pass, build-type mismatches are
// refused, per-family tolerances override the default, and the
// history snapshot round-trips through LoadBenchDoc as a BASE.

#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/report/artifact.h"
#include "obs/report/bench_diff.h"

namespace strip::obs::report {
namespace {

BenchDoc MakeDoc(const std::string& build_type, double sim_cpu_ns,
                 double queue_cpu_ns) {
  BenchDoc doc;
  doc.path = build_type + ".json";
  doc.build_type = build_type;
  doc.lto = "on";
  doc.entries.push_back(
      {"BM_Sim/1", "BM_Sim", 3, sim_cpu_ns * 1.2, sim_cpu_ns});
  doc.entries.push_back(
      {"BM_Queue", "BM_Queue", 3, queue_cpu_ns * 1.1, queue_cpu_ns});
  return doc;
}

TEST(ReportBenchDiffTest, BaselineAgainstItselfPasses) {
  const BenchDoc doc = MakeDoc("release", 1e6, 2e3);
  const BenchDiffReport report = BenchDiff(doc, doc, BenchDiffOptions{});
  EXPECT_EQ(report.regressions, 0);
  EXPECT_EQ(report.improvements, 0);
  EXPECT_FALSE(report.Exceeds());
  EXPECT_NE(BenchDiffMarkdown(report).find("PASS"), std::string::npos);
}

TEST(ReportBenchDiffTest, TwoTimesSlowdownIsRejected) {
  const BenchDoc base = MakeDoc("release", 1e6, 2e3);
  const BenchDoc slow = MakeDoc("release", 2e6, 2e3);
  const BenchDiffReport report = BenchDiff(base, slow, BenchDiffOptions{});
  EXPECT_EQ(report.regressions, 1);
  EXPECT_TRUE(report.Exceeds());
  // The regressed row is the simulator benchmark, at ratio 2.
  bool found = false;
  for (const BenchDiffRow& row : report.rows) {
    if (!row.regressed) continue;
    found = true;
    EXPECT_EQ(row.name, "BM_Sim/1");
    EXPECT_DOUBLE_EQ(row.cpu_ratio, 2.0);
  }
  EXPECT_TRUE(found);
  EXPECT_NE(BenchDiffMarkdown(report).find("FAIL"), std::string::npos);
}

TEST(ReportBenchDiffTest, ImprovementIsCountedNotGated) {
  const BenchDoc base = MakeDoc("release", 1e6, 2e3);
  const BenchDoc fast = MakeDoc("release", 5e5, 2e3);
  const BenchDiffReport report = BenchDiff(base, fast, BenchDiffOptions{});
  EXPECT_EQ(report.regressions, 0);
  EXPECT_EQ(report.improvements, 1);
  EXPECT_FALSE(report.Exceeds());
}

TEST(ReportBenchDiffTest, WithinToleranceIsQuiet) {
  const BenchDoc base = MakeDoc("release", 1e6, 2e3);
  // +8% under the 10% default: noise, not a regression.
  const BenchDoc near = MakeDoc("release", 1.08e6, 2e3);
  const BenchDiffReport report = BenchDiff(base, near, BenchDiffOptions{});
  EXPECT_EQ(report.regressions, 0);
  EXPECT_FALSE(report.Exceeds());
}

TEST(ReportBenchDiffTest, FamilyToleranceOverridesDefault) {
  const BenchDoc base = MakeDoc("release", 1e6, 2e3);
  const BenchDoc drift = MakeDoc("release", 1.15e6, 2e3);
  // 15% slower: regresses under the default 10%…
  EXPECT_EQ(BenchDiff(base, drift, BenchDiffOptions{}).regressions, 1);
  // …but the family override widens BM_Sim's floor to 25%.
  BenchDiffOptions options;
  options.family_tolerance.push_back({"BM_Sim", 0.25});
  const BenchDiffReport report = BenchDiff(base, drift, options);
  EXPECT_EQ(report.regressions, 0);
  EXPECT_FALSE(report.Exceeds());
}

TEST(ReportBenchDiffTest, BuildTypeMismatchRefusesToGate) {
  const BenchDoc base = MakeDoc("release", 1e6, 2e3);
  const BenchDoc debug = MakeDoc("debug", 1e6, 2e3);
  const BenchDiffReport report = BenchDiff(base, debug, BenchDiffOptions{});
  EXPECT_TRUE(report.build_mismatch);
  EXPECT_TRUE(report.Exceeds());
  EXPECT_FALSE(report.notes.empty());

  BenchDiffOptions allow;
  allow.allow_build_mismatch = true;
  const BenchDiffReport allowed = BenchDiff(base, debug, allow);
  EXPECT_FALSE(allowed.Exceeds());
}

TEST(ReportBenchDiffTest, RemovedBenchmarkGatesAddedDoesNot) {
  BenchDoc base = MakeDoc("release", 1e6, 2e3);
  BenchDoc next = MakeDoc("release", 1e6, 2e3);
  next.entries.push_back({"BM_New", "BM_New", 1, 10, 10});
  const BenchDiffReport grown = BenchDiff(base, next, BenchDiffOptions{});
  ASSERT_EQ(grown.added.size(), 1u);
  EXPECT_FALSE(grown.Exceeds());

  const BenchDiffReport shrunk = BenchDiff(next, base, BenchDiffOptions{});
  ASSERT_EQ(shrunk.removed.size(), 1u);
  EXPECT_TRUE(shrunk.Exceeds());
}

TEST(ReportBenchDiffTest, HistorySnapshotRoundTripsAsBase) {
  const BenchDoc doc = MakeDoc("release", 1e6, 2e3);
  const std::string snapshot = BenchHistorySnapshot(doc, "seed-baseline");
  EXPECT_NE(snapshot.find("\"schema\": \"strip.bench-history/v1\""),
            std::string::npos);
  EXPECT_NE(snapshot.find("seed-baseline"), std::string::npos);
  // Deterministic bytes.
  EXPECT_EQ(snapshot, BenchHistorySnapshot(doc, "seed-baseline"));

  const std::string path = ::testing::TempDir() + "bench_history_rt.json";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << snapshot;
  }
  std::string error;
  const auto reloaded = LoadBenchDoc(path, &error);
  ASSERT_TRUE(reloaded.has_value()) << error;
  EXPECT_EQ(reloaded->build_type, "release");
  ASSERT_EQ(reloaded->entries.size(), 2u);
  // A reloaded snapshot gates exactly like the original document.
  const BenchDiffReport report =
      BenchDiff(*reloaded, MakeDoc("release", 2e6, 2e3),
                BenchDiffOptions{});
  EXPECT_EQ(report.regressions, 1);
}

TEST(ReportBenchDiffTest, JsonReportIsDeterministic) {
  const BenchDoc base = MakeDoc("release", 1e6, 2e3);
  const BenchDoc slow = MakeDoc("release", 2e6, 2e3);
  const BenchDiffReport report = BenchDiff(base, slow, BenchDiffOptions{});
  const std::string json = BenchDiffJson(report);
  EXPECT_EQ(json, BenchDiffJson(report));
  EXPECT_NE(json.find("\"schema\": \"strip.report.bench-diff/v1\""),
            std::string::npos);
}

}  // namespace
}  // namespace strip::obs::report
