// trace_analysis: both parsers, the filters, decision tallies, and
// critical-path reconstruction on a hand-written event stream.

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace/trace_analysis.h"

namespace strip::obs::trace {
namespace {

// A small flight dump: txn 3 admitted, waits behind two updater
// installs, runs, is preempted, runs again, and misses its deadline.
constexpr char kFlightDump[] =
    "# strip-flight v1 trip=deadline-miss-burst trip_time=0.900000000 "
    "events=12\n"
    "kind,time,txn,update,object,detail,reason,instructions\n"
    "txn-admitted,0.100000000,3,,,,,\n"
    "policy-decision,0.100000000,,,,install,uf-install-on-arrival,\n"
    "dispatch,0.100000000,,7,low:2,install-uq,,4000\n"
    "segment-complete,0.200000000,,7,low:2,install-uq,,4000\n"
    "update-installed,0.200000000,,7,low:2,,,\n"
    "dispatch,0.200000000,,8,high:1,install-uq,,4000\n"
    "segment-complete,0.300000000,,8,high:1,install-uq,,4000\n"
    "dispatch,0.300000000,3,,,compute,,30000\n"
    "preempt,0.500000000,3,,,update-arrival,,\n"
    "dispatch,0.600000000,3,,,compute,,10000\n"
    "segment-complete,0.800000000,3,,,compute,,10000\n"
    "txn-terminal,0.900000000,3,,,missed-deadline,,\n";

TEST(ParseFlightDumpTest, HeaderAndRows) {
  std::istringstream in(kFlightDump);
  std::string error;
  const std::optional<ParsedTrace> parsed = ParseFlightDump(in, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->trip_predicate, "deadline-miss-burst");
  EXPECT_DOUBLE_EQ(parsed->trip_time, 0.9);
  ASSERT_EQ(parsed->events.size(), 12u);
  const ParsedEvent& dispatch = parsed->events[2];
  EXPECT_EQ(dispatch.kind, "dispatch");
  EXPECT_EQ(dispatch.txn, kNoId);
  EXPECT_EQ(dispatch.update, 7u);
  EXPECT_EQ(dispatch.object, "low:2");
  EXPECT_EQ(dispatch.detail, "install-uq");
  EXPECT_DOUBLE_EQ(dispatch.instructions, 4000);
  const ParsedEvent& decision = parsed->events[1];
  EXPECT_EQ(decision.detail, "install");
  EXPECT_EQ(decision.reason, "uf-install-on-arrival");
}

TEST(ParseFlightDumpTest, ReadsTripWindowAndFaultRows) {
  std::istringstream in(
      "# strip-flight v1 trip=outage-recovery trip_time=25.000000000 "
      "events=3 window=outage@10+5:speedup=4\n"
      "kind,time,txn,update,object,detail,reason,instructions\n"
      "fault-begin,10.000000000,,,,outage,outage@10+5:speedup=4,\n"
      "fault-end,15.000000000,,,,outage,outage@10+5:speedup=4,\n"
      "update-installed,25.000000000,,7,low:2,,,\n");
  std::string error;
  const std::optional<ParsedTrace> parsed = ParseFlightDump(in, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->trip_predicate, "outage-recovery");
  EXPECT_EQ(parsed->trip_window, "outage@10+5:speedup=4");
  ASSERT_EQ(parsed->events.size(), 3u);
  EXPECT_EQ(parsed->events[0].kind, "fault-begin");
  EXPECT_EQ(parsed->events[0].detail, "outage");
  EXPECT_EQ(parsed->events[0].reason, "outage@10+5:speedup=4");
  EXPECT_EQ(parsed->events[1].kind, "fault-end");
  // Dumps without the token leave trip_window empty.
  std::istringstream plain(kFlightDump);
  const std::optional<ParsedTrace> old = ParseFlightDump(plain, &error);
  ASSERT_TRUE(old.has_value()) << error;
  EXPECT_TRUE(old->trip_window.empty());
}

TEST(ParseFlightDumpTest, RejectsForeignText) {
  std::istringstream in("hello,world\n1,2\n");
  std::string error;
  EXPECT_FALSE(ParseFlightDump(in, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(ParseFlightDumpTest, RejectsMalformedRow) {
  std::istringstream in(
      "# strip-flight v1 trip=none trip_time=0.000000000 events=1\n"
      "kind,time,txn,update,object,detail,reason,instructions\n"
      "dispatch,0.1,3\n");
  std::string error;
  EXPECT_FALSE(ParseFlightDump(in, &error).has_value());
  EXPECT_NE(error.find("line 3"), std::string::npos);
}

TEST(ParseChromeTraceTest, ReadsEventsBackByCategory) {
  std::istringstream in(
      "{\"traceEvents\":[\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
      "\"args\":{\"name\":\"strip\"}},\n"
      "{\"name\":\"admitted\",\"cat\":\"txn-admitted\",\"ph\":\"i\","
      "\"s\":\"t\",\"pid\":1,\"tid\":1003,\"ts\":100000.000,"
      "\"args\":{\"txn\":3,\"class\":\"low\",\"deadline\":1,\"value\":1}},\n"
      "{\"name\":\"compute\",\"cat\":\"dispatch\",\"ph\":\"B\",\"pid\":1,"
      "\"tid\":1003,\"ts\":300000.000,\"args\":{\"instr\":30000,"
      "\"txn\":3}},\n"
      "{\"name\":\"compute\",\"cat\":\"segment-complete\",\"ph\":\"E\","
      "\"pid\":1,\"tid\":1003,\"ts\":500000.000},\n"
      "{\"name\":\"od-install\",\"cat\":\"od-flow\",\"ph\":\"s\",\"pid\":1,"
      "\"tid\":2,\"ts\":100000.000,\"id\":7},\n"
      "{\"name\":\"receive\",\"cat\":\"policy-decision\",\"ph\":\"i\","
      "\"s\":\"t\",\"pid\":1,\"tid\":1,\"ts\":200000.000,"
      "\"args\":{\"policy\":\"UF\",\"reason\":\"os-pending\"}}\n"
      "]}\n");
  std::string error;
  const std::optional<ParsedTrace> parsed = ParseChromeTrace(in, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  // Metadata and flow records are skipped; 4 payload events remain.
  ASSERT_EQ(parsed->events.size(), 4u);
  EXPECT_EQ(parsed->events[0].kind, "txn-admitted");
  EXPECT_DOUBLE_EQ(parsed->events[0].time, 0.1);
  EXPECT_EQ(parsed->events[0].txn, 3u);
  EXPECT_EQ(parsed->events[1].kind, "dispatch");
  EXPECT_EQ(parsed->events[1].detail, "compute");
  EXPECT_DOUBLE_EQ(parsed->events[1].instructions, 30000);
  // The bare E record inherits the open dispatch's identities.
  EXPECT_EQ(parsed->events[2].kind, "segment-complete");
  EXPECT_EQ(parsed->events[2].txn, 3u);
  EXPECT_DOUBLE_EQ(parsed->events[2].time, 0.5);
  EXPECT_EQ(parsed->events[3].kind, "policy-decision");
  EXPECT_EQ(parsed->events[3].detail, "receive");
  EXPECT_EQ(parsed->events[3].reason, "os-pending");
}

TEST(ParseChromeTraceTest, ReadsFaultInstants) {
  std::istringstream in(
      "{\"traceEvents\":[\n"
      "{\"name\":\"outage begin\",\"cat\":\"fault-begin\",\"ph\":\"i\","
      "\"s\":\"p\",\"pid\":1,\"tid\":1,\"ts\":10000000.000,"
      "\"args\":{\"window\":\"outage@10+5:speedup=4\"}},\n"
      "{\"name\":\"outage end\",\"cat\":\"fault-end\",\"ph\":\"i\","
      "\"s\":\"p\",\"pid\":1,\"tid\":1,\"ts\":15000000.000,"
      "\"args\":{\"window\":\"outage@10+5:speedup=4\"}}\n"
      "]}\n");
  std::string error;
  const std::optional<ParsedTrace> parsed = ParseChromeTrace(in, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->events.size(), 2u);
  EXPECT_EQ(parsed->events[0].kind, "fault-begin");
  EXPECT_EQ(parsed->events[0].detail, "outage begin");
  EXPECT_EQ(parsed->events[0].reason, "outage@10+5:speedup=4");
  EXPECT_DOUBLE_EQ(parsed->events[0].time, 10.0);
  EXPECT_EQ(parsed->events[1].kind, "fault-end");
  EXPECT_DOUBLE_EQ(parsed->events[1].time, 15.0);
}

TEST(ParseChromeTraceTest, RejectsForeignText) {
  std::istringstream in("{\"notATrace\": true}\n");
  std::string error;
  EXPECT_FALSE(ParseChromeTrace(in, &error).has_value());
}

std::vector<ParsedEvent> FlightEvents() {
  std::istringstream in(kFlightDump);
  std::string error;
  const std::optional<ParsedTrace> parsed = ParseFlightDump(in, &error);
  EXPECT_TRUE(parsed.has_value()) << error;
  return parsed->events;
}

TEST(FiltersTest, ByTxnObjectAndWindow) {
  const std::vector<ParsedEvent> events = FlightEvents();
  EXPECT_EQ(FilterByTxn(events, 3).size(), 6u);
  EXPECT_EQ(FilterByTxn(events, 99).size(), 0u);
  EXPECT_EQ(FilterByObject(events, "low:2").size(), 3u);
  EXPECT_EQ(FilterByObject(events, "high:1").size(), 2u);
  EXPECT_EQ(FilterByWindow(events, 0.2, 0.3).size(), 5u);
  EXPECT_EQ(FilterByWindow(events, 5.0, 9.0).size(), 0u);
}

TEST(DecisionCountsTest, TalliesChoiceSlashReason) {
  const auto counts = DecisionCounts(FlightEvents());
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts.at("install/uf-install-on-arrival"), 1u);
}

TEST(KindCountsTest, CountsEveryKind) {
  const auto counts = KindCounts(FlightEvents());
  EXPECT_EQ(counts.at("dispatch"), 4u);
  EXPECT_EQ(counts.at("segment-complete"), 3u);
  EXPECT_EQ(counts.at("preempt"), 1u);
  EXPECT_EQ(counts.at("txn-terminal"), 1u);
}

TEST(CriticalPathTest, ReconstructsRunsWaitsAndPreemption) {
  const std::vector<ParsedEvent> events = FlightEvents();
  const std::optional<std::uint64_t> miss = FirstMissedDeadlineTxn(events);
  ASSERT_TRUE(miss.has_value());
  EXPECT_EQ(*miss, 3u);

  std::string error;
  const std::optional<CriticalPath> path =
      ExtractCriticalPath(events, 3, &error);
  ASSERT_TRUE(path.has_value()) << error;
  EXPECT_EQ(path->outcome, "missed-deadline");
  EXPECT_DOUBLE_EQ(path->admitted, 0.1);
  EXPECT_DOUBLE_EQ(path->terminal, 0.9);
  // Runs: 0.3-0.5 (cut by preemption) and 0.6-0.8. Waits: 0.1-0.3,
  // 0.5-0.6, 0.8-0.9.
  EXPECT_NEAR(path->running_seconds, 0.4, 1e-9);
  EXPECT_NEAR(path->waiting_seconds, 0.4, 1e-9);
  EXPECT_NEAR(path->running_seconds + path->waiting_seconds,
              path->terminal - path->admitted, 1e-9);
  ASSERT_EQ(path->steps.size(), 6u);
  EXPECT_EQ(path->steps[0].what, "wait");
  // The first wait names the updater work that held the CPU.
  EXPECT_NE(path->steps[0].note.find("updater install-uq x2"),
            std::string::npos);
  EXPECT_EQ(path->steps[1].what, "run compute");
  EXPECT_EQ(path->steps[2].what, "preempted update-arrival");
  EXPECT_EQ(path->steps[3].what, "wait");
  EXPECT_EQ(path->steps[4].what, "run compute");
  EXPECT_EQ(path->steps[5].what, "wait");

  std::ostringstream report;
  PrintCriticalPath(report, *path);
  EXPECT_NE(report.str().find("critical path: txn 3"), std::string::npos);
  EXPECT_NE(report.str().find("outcome=missed-deadline"),
            std::string::npos);
}

TEST(CriticalPathTest, UnknownTxnIsAnError) {
  std::string error;
  EXPECT_FALSE(ExtractCriticalPath(FlightEvents(), 99, &error).has_value());
  EXPECT_NE(error.find("99"), std::string::npos);
}

// --- sharded chrome traces -------------------------------------------------

constexpr char kShardedGoldenPath[] =
    STRIP_TEST_SOURCE_DIR "/obs/testdata/chrome_trace_sharded_golden.json";

std::vector<ParsedEvent> OfShard(const ParsedTrace& trace, int shard) {
  return FilterByShard(trace.events, shard);
}

TEST(ParseChromeTraceShardedTest, GoldenTraceMapsPidsToShards) {
  std::ifstream in(kShardedGoldenPath);
  ASSERT_TRUE(in) << kShardedGoldenPath;
  std::string error;
  const std::optional<ParsedTrace> parsed = ParseChromeTrace(in, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->shards, 2);
  // 19 event rows (metadata records are consumed by the pid map).
  ASSERT_EQ(parsed->events.size(), 19u);
  for (const ParsedEvent& event : parsed->events) {
    EXPECT_TRUE(event.shard == 0 || event.shard == 1) << event.kind;
  }
}

TEST(ParseChromeTraceShardedTest, FilterByShardSplitsTheTrace) {
  std::ifstream in(kShardedGoldenPath);
  std::string error;
  const std::optional<ParsedTrace> parsed = ParseChromeTrace(in, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const std::vector<ParsedEvent> shard0 = OfShard(*parsed, 0);
  const std::vector<ParsedEvent> shard1 = OfShard(*parsed, 1);
  EXPECT_EQ(shard0.size() + shard1.size(), parsed->events.size());
  ASSERT_EQ(shard0.size(), 13u);
  ASSERT_EQ(shard1.size(), 6u);
  // Decision tallies split cleanly: shard 0 installed on arrival and
  // worked through a remote retry/degrade sequence; shard 1 deferred
  // once then installed.
  const auto decisions0 = DecisionCounts(shard0);
  const auto decisions1 = DecisionCounts(shard1);
  EXPECT_EQ(decisions0.at("install/uf-install-on-arrival"), 1u);
  EXPECT_EQ(decisions0.count("defer/txn-in-progress"), 0u);
  EXPECT_EQ(decisions0.at("remote-retry/remote-timeout"), 1u);
  EXPECT_EQ(decisions0.at("remote-degrade/retries-exhausted"), 1u);
  EXPECT_EQ(decisions1.at("defer/txn-in-progress"), 1u);
  EXPECT_EQ(decisions1.at("install/uf-install-on-arrival"), 1u);
  EXPECT_EQ(decisions1.count("remote-retry/remote-timeout"), 0u);
}

TEST(ParseChromeTraceShardedTest, RemoteRobustnessEventsParse) {
  // The golden's home shard loses request 3 in the fabric, retries at
  // its first timeout, exhausts on the second, and degrades. Every
  // event must come back with shard attribution and the flight-format
  // detail token.
  std::ifstream in(kShardedGoldenPath);
  std::string error;
  const std::optional<ParsedTrace> parsed = ParseChromeTrace(in, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  std::vector<const ParsedEvent*> timeouts;
  const ParsedEvent* dropped = nullptr;
  const ParsedEvent* degraded = nullptr;
  for (const ParsedEvent& event : parsed->events) {
    if (event.kind == "remote-timeout") timeouts.push_back(&event);
    if (event.kind == "remote-dropped") dropped = &event;
    if (event.kind == "remote-degraded") degraded = &event;
  }
  ASSERT_EQ(timeouts.size(), 2u);
  EXPECT_EQ(timeouts[0]->detail, "retry");
  EXPECT_EQ(timeouts[1]->detail, "exhausted");
  EXPECT_EQ(timeouts[0]->shard, 0);
  EXPECT_EQ(timeouts[0]->txn, 4u);
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(dropped->detail, "request");
  EXPECT_EQ(dropped->shard, 0);
  ASSERT_NE(degraded, nullptr);
  EXPECT_EQ(degraded->detail, "stale-local");
  EXPECT_EQ(degraded->shard, 0);
  EXPECT_EQ(degraded->txn, 4u);
}

TEST(ParseChromeTraceShardedTest, InterleavedSpansAttributePerShard) {
  // The golden interleaves the two shards' B/E spans (shard 0 opens at
  // 100us, shard 1 at 150us, shard 0 closes first): each E must take
  // its identities from its own shard's open dispatch.
  std::ifstream in(kShardedGoldenPath);
  std::string error;
  const std::optional<ParsedTrace> parsed = ParseChromeTrace(in, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const std::vector<ParsedEvent> shard0 = OfShard(*parsed, 0);
  const std::vector<ParsedEvent> shard1 = OfShard(*parsed, 1);
  const auto find_complete = [](const std::vector<ParsedEvent>& events)
      -> const ParsedEvent* {
    for (const ParsedEvent& event : events) {
      if (event.kind == "segment-complete") return &event;
    }
    return nullptr;
  };
  const ParsedEvent* complete0 = find_complete(shard0);
  const ParsedEvent* complete1 = find_complete(shard1);
  ASSERT_NE(complete0, nullptr);
  ASSERT_NE(complete1, nullptr);
  EXPECT_EQ(complete0->update, 1u);
  EXPECT_EQ(complete0->object, "low:3");
  EXPECT_DOUBLE_EQ(complete0->instructions, 4000);
  EXPECT_EQ(complete1->update, 9u);
  EXPECT_EQ(complete1->object, "high:7");
  EXPECT_DOUBLE_EQ(complete1->instructions, 6000);
}

TEST(ParseChromeTraceShardedTest, UniprocessorTraceStaysSingleShard) {
  std::istringstream in(
      "{\"traceEvents\":[\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
      "\"args\":{\"name\":\"strip\"}},\n"
      "{\"name\":\"arrival\",\"cat\":\"update-arrival\",\"ph\":\"i\","
      "\"s\":\"t\",\"pid\":1,\"tid\":2,\"ts\":100.0,"
      "\"args\":{\"update\":1,\"obj\":\"low:3\"}}\n"
      "]}\n");
  std::string error;
  const std::optional<ParsedTrace> parsed = ParseChromeTrace(in, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->shards, 1);
  ASSERT_EQ(parsed->events.size(), 1u);
  EXPECT_EQ(parsed->events[0].shard, 0);
}

}  // namespace
}  // namespace strip::obs::trace
