// Sweep summarization: per-policy × per-x tables in canonical order,
// and the --by-shard imbalance analytics — skew ratios with
// worst-shard attribution and true cluster percentiles from
// bucket-merged histograms (cross-checked against a single histogram
// fed every shard's samples).

#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/latency_histogram.h"
#include "obs/report/artifact.h"
#include "obs/report/summary.h"

namespace strip::obs::report {
namespace {

SweepCellDoc MakeCell(const std::string& policy, std::size_t x_index,
                      double x_value, double p_md) {
  SweepCellDoc cell;
  cell.policy = policy;
  cell.x_name = "lambda_u";
  cell.x_value = x_value;
  cell.x_index = x_index;
  cell.replications = 2;
  // Two replications bracketing the mean.
  cell.runs = {{{"p_md", p_md - 0.01}, {"p_success", 0.9}},
               {{"p_md", p_md + 0.01}, {"p_success", 0.9}}};
  return cell;
}

// One shard's telemetry with a real response histogram built from
// samples, so merged cluster quantiles can be cross-checked.
TelemetryDoc MakeShard(int shard, int shards, double load,
                       double f_old_low, double remote,
                       const std::vector<double>& samples) {
  TelemetryDoc doc;
  doc.policy = "OD";
  doc.shard = shard;
  doc.shards = shards;
  LatencyHistogram h(1e-4, 100.0);
  for (double s : samples) h.Add(s);
  HistogramData data;
  data.name = "response_seconds";
  data.count = h.count();
  data.mean = h.mean();
  data.min_sample = h.min_sample();
  data.max_sample = h.max_sample();
  data.p50 = h.Quantile(0.5);
  data.p90 = h.Quantile(0.9);
  data.p99 = h.Quantile(0.99);
  data.range_min = 1e-4;
  data.range_max = 100.0;
  data.buckets_per_decade = h.buckets_per_decade();
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    if (h.bucket_value(i) != 0) data.buckets.emplace_back(i, h.bucket_value(i));
  }
  doc.histograms.push_back(data);
  doc.metrics = {{"txns_committed", load},
                 {"f_old_low", f_old_low},
                 {"remote_reads_issued", remote},
                 {"remote_reads_served", 0.0},
                 {"response_p99", h.Quantile(0.99)}};
  return doc;
}

TEST(ReportSummaryTest, TablesAreCanonicalOrderWithMeans) {
  SweepDirData data;
  data.x_name = "lambda_u";
  // Inserted out of canonical order on purpose.
  data.cells.push_back(MakeCell("OD", 0, 100, 0.30));
  data.cells.push_back(MakeCell("UF", 0, 100, 0.10));
  data.cells.push_back(MakeCell("OD", 1, 200, 0.40));
  data.cells.push_back(MakeCell("UF", 1, 200, 0.20));
  data.policies = {"UF", "OD"};
  data.x_values = {100, 200};

  SummaryOptions options;
  options.metrics = {"p_md"};
  const SummaryReport report = SummarizeSweep(data, options);
  ASSERT_EQ(report.tables.size(), 1u);
  const SummaryTable& table = report.tables[0];
  EXPECT_EQ(table.metric, "p_md");
  ASSERT_EQ(table.policies.size(), 2u);
  EXPECT_EQ(table.policies[0], "UF");  // canonical order, not insertion
  EXPECT_EQ(table.policies[1], "OD");
  ASSERT_EQ(table.cells.size(), 2u);
  EXPECT_DOUBLE_EQ(table.cells[0][0].value(), 0.10);
  EXPECT_DOUBLE_EQ(table.cells[0][1].value(), 0.30);
  EXPECT_DOUBLE_EQ(table.cells[1][1].value(), 0.40);

  // Renderings are pure functions of the report.
  EXPECT_EQ(SummaryMarkdown(report), SummaryMarkdown(report));
  const std::string csv = SummaryCsv(report);
  EXPECT_NE(csv.find("p_md,UF,lambda_u,100,"), std::string::npos) << csv;
}

TEST(ReportSummaryTest, MissingCellIsAbsentNotZero) {
  SweepDirData data;
  data.x_name = "lambda_u";
  data.cells.push_back(MakeCell("UF", 0, 100, 0.10));
  data.cells.push_back(MakeCell("UF", 1, 200, 0.20));
  data.cells.push_back(MakeCell("OD", 0, 100, 0.30));
  data.policies = {"UF", "OD"};
  data.x_values = {100, 200};
  SummaryOptions options;
  options.metrics = {"p_md"};
  const SummaryReport report = SummarizeSweep(data, options);
  ASSERT_EQ(report.tables.size(), 1u);
  EXPECT_FALSE(report.tables[0].cells[1][1].has_value());
}

TEST(ReportSummaryTest, ShardImbalanceSkewAndAttribution) {
  SweepDirData data;
  data.x_name = "lambda_u";
  SweepDirData::ShardGroup group;
  group.label = "OD_00";
  // Shard 2 is the hot shard on every dimension: double the load,
  // the stalest data, all the remote traffic.
  group.shards.push_back(
      MakeShard(0, 3, 100, 0.10, 10, {0.1, 0.1, 0.2}));
  group.shards.push_back(
      MakeShard(1, 3, 100, 0.10, 10, {0.1, 0.2, 0.2}));
  group.shards.push_back(
      MakeShard(2, 3, 200, 0.40, 40, {0.4, 0.8, 1.6}));
  data.shard_groups.push_back(group);

  SummaryOptions options;
  options.by_shard = true;
  const SummaryReport report = SummarizeSweep(data, options);
  ASSERT_EQ(report.imbalance.size(), 1u);
  const ShardImbalance& imbalance = report.imbalance[0];
  EXPECT_EQ(imbalance.label, "OD_00");
  EXPECT_EQ(imbalance.shards, 3);

  const auto* load = imbalance.FindDimension("load");
  ASSERT_NE(load, nullptr);
  // max/mean = 200 / ((100+100+200)/3) = 1.5
  EXPECT_NEAR(load->skew, 1.5, 1e-12);
  EXPECT_EQ(load->worst_shard, 2);

  const auto* staleness = imbalance.FindDimension("staleness");
  ASSERT_NE(staleness, nullptr);
  EXPECT_NEAR(staleness->skew, 0.40 / 0.20, 1e-12);
  EXPECT_EQ(staleness->worst_shard, 2);

  const auto* remote = imbalance.FindDimension("remote_traffic");
  ASSERT_NE(remote, nullptr);
  EXPECT_EQ(remote->worst_shard, 2);

  // Cluster percentiles must equal a single histogram fed all nine
  // samples — the merge is exact, not an approximation.
  LatencyHistogram all(1e-4, 100.0);
  for (double s : {0.1, 0.1, 0.2, 0.1, 0.2, 0.2, 0.4, 0.8, 1.6}) {
    all.Add(s);
  }
  ASSERT_TRUE(imbalance.cluster_p50.has_value());
  EXPECT_DOUBLE_EQ(*imbalance.cluster_p50, all.Quantile(0.5));
  EXPECT_DOUBLE_EQ(*imbalance.cluster_p90, all.Quantile(0.9));
  EXPECT_DOUBLE_EQ(*imbalance.cluster_p99, all.Quantile(0.99));
  // Worst-shard attribution: shard 2 holds the heaviest tail.
  ASSERT_TRUE(imbalance.worst_p99.has_value());
  EXPECT_EQ(imbalance.worst_p99_shard, 2);
  EXPECT_GE(*imbalance.worst_p99, *imbalance.cluster_p99);
}

TEST(ReportSummaryTest, UniformShardsHaveUnitSkew) {
  SweepDirData data;
  SweepDirData::ShardGroup group;
  group.label = "UF_00";
  group.shards.push_back(MakeShard(0, 2, 100, 0.2, 5, {0.1, 0.2}));
  group.shards.push_back(MakeShard(1, 2, 100, 0.2, 5, {0.1, 0.2}));
  data.shard_groups.push_back(group);
  SummaryOptions options;
  options.by_shard = true;
  const SummaryReport report = SummarizeSweep(data, options);
  ASSERT_EQ(report.imbalance.size(), 1u);
  for (const auto& dimension : report.imbalance[0].dimensions) {
    EXPECT_DOUBLE_EQ(dimension.skew, 1.0) << dimension.name;
  }
}

}  // namespace
}  // namespace strip::obs::report
