// The diff engine's two headline contracts: byte-identical artifacts
// diff to zero rows (the determinism gate), and a perturbed metric is
// named and fails the threshold gate. Rendering is deterministic
// markdown / JSON.

#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/report/artifact.h"
#include "obs/report/diff.h"

namespace strip::obs::report {
namespace {

TelemetryDoc MakeTelemetry(double committed, double p_md) {
  TelemetryDoc doc;
  doc.path = "t.json";
  doc.policy = "OD";
  doc.staleness = "MA";
  doc.seed = 7;
  doc.sim_seconds = 30;
  doc.lambda_t = 10;
  doc.lambda_u = 200;
  doc.stale_reads_seen = 5;
  doc.metrics = {{"txns_committed", committed},
                 {"p_md", p_md},
                 {"outage_recovery_seconds", std::nullopt}};
  HistogramData h;
  h.name = "response_seconds";
  h.count = 10;
  h.mean = 0.2;
  h.p50 = 0.15;
  h.p90 = 0.3;
  h.p99 = 0.4;
  h.range_min = 1e-4;
  h.range_max = 100;
  h.buckets_per_decade = 16;
  doc.histograms.push_back(h);
  return doc;
}

TEST(ReportDiffTest, IdenticalDocsHaveZeroDeltas) {
  const TelemetryDoc doc = MakeTelemetry(100, 0.125);
  const DiffReport report = DiffTelemetry(doc, doc, DiffOptions{});
  EXPECT_EQ(report.rows_changed, 0);
  EXPECT_EQ(report.rows_over_threshold, 0);
  EXPECT_TRUE(report.notes.empty());
  EXPECT_FALSE(report.Exceeds());
  EXPECT_NE(DiffMarkdown(report, DiffOptions{}).find("metric-identical"),
            std::string::npos);
}

TEST(ReportDiffTest, PerturbedMetricIsNamedAndGates) {
  const TelemetryDoc a = MakeTelemetry(100, 0.125);
  const TelemetryDoc b = MakeTelemetry(103, 0.125);
  DiffOptions options;
  options.threshold = 0.01;  // 1% gate; 3% move must trip it
  const DiffReport report = DiffTelemetry(a, b, options);
  EXPECT_TRUE(report.Exceeds());
  EXPECT_EQ(report.rows_changed, 1);
  EXPECT_EQ(report.rows_over_threshold, 1);
  ASSERT_EQ(report.over_threshold_names.size(), 1u);
  EXPECT_EQ(report.over_threshold_names[0], "metrics.txns_committed");
}

TEST(ReportDiffTest, ChangeWithinThresholdDoesNotGate) {
  const TelemetryDoc a = MakeTelemetry(100, 0.125);
  const TelemetryDoc b = MakeTelemetry(102, 0.125);
  DiffOptions options;
  options.threshold = 0.05;  // 2% move under a 5% gate
  const DiffReport report = DiffTelemetry(a, b, options);
  EXPECT_EQ(report.rows_changed, 1);
  EXPECT_EQ(report.rows_over_threshold, 0);
  EXPECT_FALSE(report.Exceeds());
}

TEST(ReportDiffTest, NullVersusNumberAlwaysGates) {
  const TelemetryDoc a = MakeTelemetry(100, 0.125);
  TelemetryDoc b = a;
  // outage_recovery_seconds flips null -> 12.5: no relative delta
  // exists, so any threshold must gate.
  b.metrics[2].second = 12.5;
  DiffOptions options;
  options.threshold = 100.0;
  const DiffReport report = DiffTelemetry(a, b, options);
  EXPECT_TRUE(report.Exceeds());
  ASSERT_EQ(report.over_threshold_names.size(), 1u);
  EXPECT_EQ(report.over_threshold_names[0],
            "metrics.outage_recovery_seconds");
}

TEST(ReportDiffTest, ContextMismatchIsANoteAndGates) {
  const TelemetryDoc a = MakeTelemetry(100, 0.125);
  TelemetryDoc b = a;
  b.policy = "UF";
  const DiffReport report = DiffTelemetry(a, b, DiffOptions{});
  EXPECT_FALSE(report.notes.empty());
  EXPECT_TRUE(report.Exceeds());
}

TEST(ReportDiffTest, HistogramRowsParticipate) {
  const TelemetryDoc a = MakeTelemetry(100, 0.125);
  TelemetryDoc b = a;
  b.histograms[0].p99 = 0.8;
  const DiffReport report = DiffTelemetry(a, b, DiffOptions{});
  EXPECT_TRUE(report.Exceeds());
  ASSERT_EQ(report.over_threshold_names.size(), 1u);
  EXPECT_EQ(report.over_threshold_names[0],
            "histograms.response_seconds.p99");
}

TEST(ReportDiffTest, SweepCellDiffComparesPerReplication) {
  SweepCellDoc a;
  a.policy = "UF";
  a.x_name = "lambda_u";
  a.x_value = 200;
  a.replications = 2;
  a.runs = {{{"p_md", 0.1}}, {{"p_md", 0.2}}};
  SweepCellDoc b = a;
  b.runs[1] = {{"p_md", 0.5}};
  const DiffReport report = DiffSweepCell(a, b, DiffOptions{});
  EXPECT_TRUE(report.Exceeds());
  ASSERT_EQ(report.over_threshold_names.size(), 1u);
  // The failing row names the replication, not just the metric.
  EXPECT_EQ(report.over_threshold_names[0], "runs[1].p_md");
}

TEST(ReportDiffTest, MarkdownAndJsonAreDeterministic) {
  const TelemetryDoc a = MakeTelemetry(100, 0.125);
  const TelemetryDoc b = MakeTelemetry(103, 0.2);
  const DiffReport report = DiffTelemetry(a, b, DiffOptions{});
  EXPECT_EQ(DiffMarkdown(report, DiffOptions{}),
            DiffMarkdown(report, DiffOptions{}));
  const std::string json = DiffJson(report);
  EXPECT_EQ(json, DiffJson(report));
  EXPECT_NE(json.find("\"schema\": \"strip.report.diff/v1\""),
            std::string::npos);
  EXPECT_NE(json.find("txns_committed"), std::string::npos);
}

TEST(ReportDiffTest, DiffPathsRejectsMixedKinds) {
  const std::string dir = ::testing::TempDir();
  const std::string telemetry = dir + "diff_kind_t.json";
  const std::string bench = dir + "diff_kind_b.json";
  {
    std::ofstream t(telemetry);
    t << "{\"schema\": \"strip.telemetry/v3\", \"run\": {},"
         " \"metrics\": {}, \"histograms\": {}}";
    std::ofstream b(bench);
    b << "{\"context\": {}, \"benchmarks\": []}";
  }
  std::string error;
  EXPECT_FALSE(DiffPaths(telemetry, bench, DiffOptions{}, &error)
                   .has_value());
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace strip::obs::report
