// PeriodicSampler probing a live System.

#include <gtest/gtest.h>

#include "core/system.h"
#include "obs/sampler.h"
#include "sim/simulator.h"

namespace strip::obs {
namespace {

TEST(PeriodicSamplerTest, ProbesOnTheConfiguredInterval) {
  sim::Simulator sim;
  core::Config config;
  config.sim_seconds = 10.0;
  core::System system(&sim, config, base::RngSeed(5));

  PeriodicSampler::Options options;
  options.interval = 0.5;
  PeriodicSampler sampler(&system, options);
  core::ScopedObserver scoped(&system.observer_bus(), &sampler);
  system.Run();

  // Probes at 0.5, 1.0, ..., 10.0 — the final one coincides with run
  // end, so no extra end sample is appended.
  ASSERT_EQ(sampler.samples().size(), 20u);
  EXPECT_DOUBLE_EQ(sampler.samples().front().time, 0.5);
  EXPECT_DOUBLE_EQ(sampler.samples().back().time, 10.0);
  for (std::size_t i = 1; i < sampler.samples().size(); ++i) {
    EXPECT_GT(sampler.samples()[i].time, sampler.samples()[i - 1].time);
  }
  EXPECT_DOUBLE_EQ(sampler.run_end(), 10.0);
}

TEST(PeriodicSamplerTest, AppendsFinalSampleWhenRunEndsOffGrid) {
  sim::Simulator sim;
  core::Config config;
  config.sim_seconds = 5.25;
  core::System system(&sim, config, base::RngSeed(5));

  PeriodicSampler sampler(&system);  // default 1 s interval
  core::ScopedObserver scoped(&system.observer_bus(), &sampler);
  system.Run();

  // Probes at 1..5 plus the appended run-end sample at 5.25.
  ASSERT_EQ(sampler.samples().size(), 6u);
  EXPECT_DOUBLE_EQ(sampler.samples().back().time, 5.25);
}

TEST(PeriodicSamplerTest, SamplesAreWellFormed) {
  sim::Simulator sim;
  core::Config config;
  config.sim_seconds = 20.0;
  config.warmup_seconds = 4.0;
  core::System system(&sim, config, base::RngSeed(11));

  PeriodicSampler sampler(&system);
  core::ScopedObserver scoped(&system.observer_bus(), &sampler);
  system.Run();

  EXPECT_DOUBLE_EQ(sampler.warmup_end(), 4.0);
  ASSERT_FALSE(sampler.samples().empty());
  for (const PeriodicSampler::Sample& s : sampler.samples()) {
    EXPECT_GE(s.f_stale_low, 0.0);
    EXPECT_LE(s.f_stale_low, 1.0);
    EXPECT_GE(s.f_stale_high, 0.0);
    EXPECT_LE(s.f_stale_high, 1.0);
    // CPU shares partition the observation window.
    EXPECT_GE(s.cpu_share_txn, 0.0);
    EXPECT_GE(s.cpu_share_updater, 0.0);
    EXPECT_GE(s.cpu_share_idle, 0.0);
    if (s.time > 4.0) {
      EXPECT_NEAR(s.cpu_share_txn + s.cpu_share_updater + s.cpu_share_idle,
                  1.0, 1e-9)
          << "at t=" << s.time;
    }
  }
  // The paper's baseline keeps the CPU busy: some transaction work
  // must show up in the shares by the end of the run.
  EXPECT_GT(sampler.samples().back().cpu_share_txn, 0.0);
}

TEST(PeriodicSamplerTest, SamplerOutlivedByPendingProbeIsSafe) {
  sim::Simulator sim;
  core::Config config;
  config.sim_seconds = 10.0;
  core::System system(&sim, config, base::RngSeed(5));
  {
    PeriodicSampler sampler(&system);
    core::ScopedObserver scoped(&system.observer_bus(), &sampler);
    // Destroyed before Run(): the pending probe event must be
    // cancelled, not left dangling.
  }
  system.Run();  // must not crash
}

}  // namespace
}  // namespace strip::obs
