// Pins the behavioural contract of base/strong_types.h: the wrappers
// must act exactly like the raw types they replaced — same comparison
// results, same hash values (bucket-layout preservation is what the
// A/B byte-identity baselines rely on), same streamed text — while
// rejecting cross-type mixups at compile time.

#include "base/strong_types.h"

#include <cstdint>
#include <functional>
#include <sstream>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

namespace strip::base {
namespace {

using TestScalar = StrongScalar<struct TestScalarTag, std::int64_t>;

TEST(StrongIdTest, DefaultConstructsToZero) {
  EXPECT_EQ(TxnId().value(), 0u);
  EXPECT_EQ(ShardId().value(), 0);
}

TEST(StrongIdTest, EqualityAndOrderingMatchRaw) {
  const TxnId a(3), b(3), c(7);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
  EXPECT_GE(c, b);
}

TEST(StrongIdTest, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<TxnId, UpdateId>);
  static_assert(!std::is_same_v<TxnId, RngSeed>);
  static_assert(!std::is_convertible_v<TxnId, UpdateId>);
  static_assert(!std::is_convertible_v<std::uint64_t, TxnId>);
  static_assert(!std::is_convertible_v<TxnId, std::uint64_t>);
}

TEST(StrongIdTest, HashForwardsToUnderlyingHash) {
  // Identical hash values are what keep unordered containers keyed by
  // a strong id on the exact bucket layout of the raw-keyed original.
  for (std::uint64_t v : {0ull, 1ull, 42ull, 0xdeadbeefull}) {
    EXPECT_EQ(std::hash<TxnId>{}(TxnId(v)), std::hash<std::uint64_t>{}(v));
    EXPECT_EQ(StrongTypeHash{}(UpdateId(v)),
              std::hash<std::uint64_t>{}(v));
  }
}

TEST(StrongIdTest, UsableAsUnorderedKey) {
  std::unordered_map<TxnId, int> by_txn;
  by_txn[TxnId(5)] = 50;
  by_txn[TxnId(6)] = 60;
  EXPECT_EQ(by_txn.at(TxnId(5)), 50);
  EXPECT_EQ(by_txn.count(TxnId(7)), 0u);

  std::unordered_set<ShardId> shards{ShardId(0), ShardId(2)};
  EXPECT_TRUE(shards.count(ShardId(2)));
  EXPECT_FALSE(shards.count(ShardId(1)));
}

TEST(StrongIdTest, StreamsExactlyTheRawValue) {
  std::ostringstream strong, raw;
  strong << TxnId(123456789);
  raw << std::uint64_t{123456789};
  EXPECT_EQ(strong.str(), raw.str());
}

TEST(StrongIdTest, NoShardSentinel) {
  EXPECT_EQ(kNoShard.value(), -1);
  EXPECT_NE(kNoShard, ShardId(0));
  EXPECT_LT(kNoShard, ShardId(0));
}

TEST(StrongScalarTest, ClosedArithmetic) {
  TestScalar a(10), b(3);
  EXPECT_EQ((a + b).value(), 13);
  EXPECT_EQ((a - b).value(), 7);
  EXPECT_EQ((b * 4).value(), 12);
  a += b;
  EXPECT_EQ(a.value(), 13);
  a -= TestScalar(1);
  EXPECT_EQ(a.value(), 12);
}

TEST(StrongScalarTest, HashAndStreamMatchRaw) {
  EXPECT_EQ(std::hash<TestScalar>{}(TestScalar(9)),
            std::hash<std::int64_t>{}(9));
  std::ostringstream os;
  os << TestScalar(-4);
  EXPECT_EQ(os.str(), "-4");
}

TEST(StrongTypesTest, LayoutIsExactlyTheRawType) {
  static_assert(sizeof(TxnId) == sizeof(std::uint64_t));
  static_assert(sizeof(RngSeed) == sizeof(std::uint64_t));
  static_assert(sizeof(ShardId) == sizeof(int));
  static_assert(alignof(TxnId) == alignof(std::uint64_t));
  static_assert(std::is_trivially_copyable_v<UpdateId>);
  static_assert(std::is_trivially_copyable_v<TestScalar>);
  static_assert(std::is_standard_layout_v<RngSeed>);
}

}  // namespace
}  // namespace strip::base
