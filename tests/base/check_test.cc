#include "base/check.h"

#include <gtest/gtest.h>

namespace {

TEST(CheckTest, PassingConditionIsSilent) {
  STRIP_CHECK(1 + 1 == 2);
  STRIP_CHECK_MSG(true, "never printed");
  SUCCEED();
}

TEST(CheckDeathTest, FailingCheckAbortsWithCondition) {
  EXPECT_DEATH(STRIP_CHECK(1 == 2), "1 == 2");
}

TEST(CheckDeathTest, FailingCheckMsgIncludesMessage) {
  EXPECT_DEATH(STRIP_CHECK_MSG(false, "the extra context"),
               "the extra context");
}

TEST(CheckDeathTest, FailureNamesTheSourceFile) {
  EXPECT_DEATH(STRIP_CHECK(false), "check_test.cc");
}

TEST(CheckTest, ConditionEvaluatedExactlyOnce) {
  int calls = 0;
  STRIP_CHECK([&] {
    ++calls;
    return true;
  }());
  EXPECT_EQ(calls, 1);
}

}  // namespace
