// FaultSchedule::Parse: the --faults grammar, its validation errors,
// and window queries.

#include "fault/fault_schedule.h"

#include <gtest/gtest.h>

#include <string>

namespace strip::fault {
namespace {

FaultSchedule MustParse(const std::string& spec) {
  std::string error;
  const auto schedule = FaultSchedule::Parse(spec, &error);
  EXPECT_TRUE(schedule.has_value()) << error;
  return *schedule;
}

std::string MustFail(const std::string& spec) {
  std::string error;
  const auto schedule = FaultSchedule::Parse(spec, &error);
  EXPECT_FALSE(schedule.has_value()) << "spec parsed: " << spec;
  return error;
}

TEST(FaultScheduleTest, EmptySpecIsEmptySchedule) {
  const FaultSchedule schedule = MustParse("");
  EXPECT_TRUE(schedule.empty());
  EXPECT_EQ(schedule.windows().size(), 0u);
}

TEST(FaultScheduleTest, ParsesAllSixKinds) {
  const FaultSchedule schedule = MustParse(
      "outage@10+5:speedup=4;burst@30+10:factor=3;loss@20+5:p=0.2;"
      "dup@25+5:p=0.1,delay=0.02;reorder@40+5:p=0.3,delay=0.05;"
      "cpu@45+5:factor=0.5");
  ASSERT_EQ(schedule.windows().size(), 6u);
  EXPECT_EQ(schedule.windows()[0].kind, FaultKind::kOutage);
  EXPECT_DOUBLE_EQ(schedule.windows()[0].start, 10);
  EXPECT_DOUBLE_EQ(schedule.windows()[0].end(), 15);
  EXPECT_DOUBLE_EQ(schedule.windows()[0].speedup, 4);
  EXPECT_EQ(schedule.windows()[1].kind, FaultKind::kBurst);
  EXPECT_DOUBLE_EQ(schedule.windows()[1].factor, 3);
  EXPECT_EQ(schedule.windows()[2].kind, FaultKind::kLoss);
  EXPECT_DOUBLE_EQ(schedule.windows()[2].probability, 0.2);
  EXPECT_EQ(schedule.windows()[3].kind, FaultKind::kDuplicate);
  EXPECT_DOUBLE_EQ(schedule.windows()[3].delay, 0.02);
  EXPECT_EQ(schedule.windows()[4].kind, FaultKind::kReorder);
  EXPECT_EQ(schedule.windows()[5].kind, FaultKind::kCpu);
  EXPECT_DOUBLE_EQ(schedule.windows()[5].factor, 0.5);
}

TEST(FaultScheduleTest, ActiveAtRespectsHalfOpenWindows) {
  const FaultSchedule schedule = MustParse("outage@10+5:speedup=2");
  EXPECT_EQ(schedule.ActiveAt(FaultKind::kOutage, 9.999), nullptr);
  EXPECT_NE(schedule.ActiveAt(FaultKind::kOutage, 10.0), nullptr);
  EXPECT_NE(schedule.ActiveAt(FaultKind::kOutage, 14.999), nullptr);
  EXPECT_EQ(schedule.ActiveAt(FaultKind::kOutage, 15.0), nullptr);
  EXPECT_EQ(schedule.ActiveAt(FaultKind::kBurst, 12.0), nullptr);
}

TEST(FaultScheduleTest, ToStringRoundTripsLabels) {
  const FaultSchedule schedule =
      MustParse("outage@10+5:speedup=4;loss@20+5:p=0.2");
  const FaultSchedule reparsed = MustParse(schedule.ToString());
  EXPECT_EQ(reparsed.windows().size(), 2u);
  EXPECT_EQ(reparsed.ToString(), schedule.ToString());
}

TEST(FaultScheduleTest, ErrorsNameTheBadToken) {
  EXPECT_NE(MustFail("bogus@1+2").find("\"bogus@1+2\""), std::string::npos);
  EXPECT_NE(MustFail("outage@1").find("bad window"), std::string::npos);
  EXPECT_NE(MustFail("outage@-1+2").find("bad window"), std::string::npos);
  EXPECT_NE(MustFail("outage@1+0").find("bad window"), std::string::npos);
  EXPECT_NE(MustFail("outage@nan+2").find("bad window"), std::string::npos);
  EXPECT_NE(MustFail("outage@1+inf").find("bad window"), std::string::npos);
}

TEST(FaultScheduleTest, LossDupReorderRequireProbability) {
  EXPECT_NE(MustFail("loss@1+2").find("requires p="), std::string::npos);
  EXPECT_NE(MustFail("dup@1+2").find("requires p="), std::string::npos);
  EXPECT_NE(MustFail("reorder@1+2").find("requires p="), std::string::npos);
  // ...and p must be a probability.
  EXPECT_NE(MustFail("loss@1+2:p=1.5").find("bad window"),
            std::string::npos);
  EXPECT_NE(MustFail("loss@1+2:p=-0.1").find("bad window"),
            std::string::npos);
}

TEST(FaultScheduleTest, ParamValidation) {
  // cpu factor must slow the CPU, not speed it up.
  EXPECT_NE(MustFail("cpu@1+2:factor=2").find("bad window"),
            std::string::npos);
  EXPECT_NE(MustFail("burst@1+2:factor=0").find("bad window"),
            std::string::npos);
  EXPECT_NE(MustFail("outage@1+2:speedup=0.5").find("bad window"),
            std::string::npos);
  EXPECT_NE(MustFail("outage@1+2:wat=3").find("bad window"),
            std::string::npos);
  // Params only valid for their kinds.
  EXPECT_NE(MustFail("outage@1+2:p=0.5").find("bad window"),
            std::string::npos);
  EXPECT_NE(MustFail("loss@1+2:p=0.5,speedup=2").find("bad window"),
            std::string::npos);
}

TEST(FaultScheduleTest, EveryTruncationParsesOrRejectsCleanly) {
  // Regression for the fuzz-target contract: a spec cut at any byte
  // either parses or produces a non-empty error — never a crash or a
  // silent half-accept. Exercises every prefix of a spec using all six
  // kinds and every parameter form.
  const std::string full =
      "outage@10+5:speedup=4;burst@30+10:factor=3;loss@20+5:p=0.2;"
      "dup@25+5:p=0.2;reorder@40+5:p=0.3;cpu@45+5:factor=0.5";
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    const std::string spec = full.substr(0, cut);
    std::string error;
    const std::optional<FaultSchedule> schedule =
        FaultSchedule::Parse(spec, &error);
    if (schedule.has_value()) {
      // Accepted prefixes round-trip through the canonical form.
      std::string error2;
      const auto again = FaultSchedule::Parse(schedule->ToString(),
                                              &error2);
      ASSERT_TRUE(again.has_value()) << "cut=" << cut << ": " << error2;
      EXPECT_EQ(again->ToString(), schedule->ToString());
    } else {
      EXPECT_FALSE(error.empty()) << "silent rejection at cut=" << cut;
    }
  }
}

TEST(FaultScheduleTest, SameKindWindowsMustNotOverlap) {
  const std::string error = MustFail("outage@10+5;outage@12+5:speedup=2");
  EXPECT_NE(error.find("overlaps"), std::string::npos);
  // Different kinds may overlap freely.
  MustParse("outage@10+5;burst@12+5:factor=2");
  // Touching (end == start) same-kind windows are fine.
  MustParse("loss@10+5:p=0.1;loss@15+5:p=0.2");
}

TEST(FaultScheduleTest, ParsesClusterScopedKinds) {
  const FaultSchedule schedule = MustParse(
      "link-latency@20+10:latency=0.002,jitter=0.001;"
      "link-loss@30+10:p=0.3;partition@50+10:shards=0/2;"
      "shard-outage@70+5:shard=1");
  ASSERT_EQ(schedule.windows().size(), 4u);
  EXPECT_EQ(schedule.windows()[0].kind, FaultKind::kLinkLatency);
  EXPECT_DOUBLE_EQ(schedule.windows()[0].latency, 0.002);
  EXPECT_DOUBLE_EQ(schedule.windows()[0].jitter, 0.001);
  EXPECT_EQ(schedule.windows()[1].kind, FaultKind::kLinkLoss);
  EXPECT_DOUBLE_EQ(schedule.windows()[1].probability, 0.3);
  EXPECT_EQ(schedule.windows()[2].kind, FaultKind::kPartition);
  ASSERT_EQ(schedule.windows()[2].shard_set.size(), 2u);
  EXPECT_EQ(schedule.windows()[2].shard_set[0], 0);
  EXPECT_EQ(schedule.windows()[2].shard_set[1], 2);
  EXPECT_EQ(schedule.windows()[3].kind, FaultKind::kShardOutage);
  EXPECT_EQ(schedule.windows()[3].shard, 1);
  for (const FaultWindow& w : schedule.windows()) {
    EXPECT_TRUE(IsClusterScoped(w.kind)) << w.label;
  }
  EXPECT_FALSE(IsClusterScoped(FaultKind::kLoss));
  // The cluster kinds round-trip through the canonical form too.
  EXPECT_EQ(MustParse(schedule.ToString()).ToString(),
            schedule.ToString());
}

TEST(FaultScheduleTest, ClusterKindErrorsArePinnedOneLiners) {
  // The full diagnostic for each malformed cluster-scoped token is
  // part of the CLI contract: scripts grep for these lines, and the
  // fuzz corpus (fuzz/corpus/fault_schedule/partition_bad_shards and
  // friends) seeds the same shapes.
  EXPECT_EQ(MustFail("partition@15+10"),
            "faults: bad window \"partition@15+10\": \"partition\" "
            "requires shards=... (one side of the cut, e.g. shards=0/1)");
  EXPECT_EQ(MustFail("partition@15+10:shards=0/x"),
            "faults: bad window \"partition@15+10:shards=0/x\": shards "
            "must be a '/'-separated list of shard ids >= 0 "
            "(e.g. shards=0/1)");
  EXPECT_EQ(MustFail("link-latency@20+10:jitter=0.001"),
            "faults: bad window \"link-latency@20+10:jitter=0.001\": "
            "\"link-latency\" requires latency=... (extra seconds per "
            "delivery)");
  EXPECT_EQ(MustFail("link-loss@30+10"),
            "faults: bad window \"link-loss@30+10\": \"link-loss\" "
            "requires p=... (per-arrival probability)");
  EXPECT_EQ(MustFail("link-loss@30+10:p=1.5"),
            "faults: bad window \"link-loss@30+10:p=1.5\": p must be in "
            "[0, 1]");
  EXPECT_EQ(MustFail("shard-outage@25+10"),
            "faults: bad window \"shard-outage@25+10\": \"shard-outage\" "
            "requires shard=N (the unreachable shard)");
  EXPECT_EQ(MustFail("shard-outage@25+10:shard=1.5"),
            "faults: bad window \"shard-outage@25+10:shard=1.5\": shard "
            "must be an integer >= 0");
  EXPECT_EQ(MustFail("loss@10+5:shards=0/1"),
            "faults: bad window \"loss@10+5:shards=0/1\": \"shards\" "
            "only applies to partition");
}

}  // namespace
}  // namespace strip::fault
