// System-level fault behavior: importance-aware shedding, the
// overload governor, recovery metrics, and whole-run determinism
// under an active fault schedule.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/observer.h"
#include "core/system.h"
#include "exp/experiment.h"
#include "sim/simulator.h"

namespace strip::core {
namespace {

Config ShortConfig() {
  Config config;
  config.sim_seconds = 30;
  config.warmup_seconds = 0;
  return config;
}

RunMetrics RunWith(const Config& config, std::uint64_t seed = 5) {
  sim::Simulator simulator;
  System system(&simulator, config, base::RngSeed(seed));
  return system.Run();
}

class DropCounter : public SystemObserver {
 public:
  void OnUpdateDropped(sim::Time, const db::Update& update,
                       DropReason reason) override {
    if (reason != DropReason::kOverloadShed) return;
    ++shed_[static_cast<int>(update.object.cls)];
  }
  std::uint64_t shed_[2] = {0, 0};
};

class GovernorWatcher : public SystemObserver {
 public:
  void OnPolicyDecision(sim::Time, PolicyKind, SchedulerChoice choice,
                        const char*) override {
    if (choice == SchedulerChoice::kGovernorEngage) ++engages_;
    if (choice == SchedulerChoice::kGovernorDisengage) ++disengages_;
  }
  int engages_ = 0;
  int disengages_ = 0;
};

class WindowWatcher : public SystemObserver {
 public:
  void OnFaultWindow(sim::Time, const FaultWindowInfo& window) override {
    boundaries_.push_back(std::string(window.kind) +
                          (window.begin ? "+" : "-"));
  }
  std::vector<std::string> boundaries_;
};

TEST(FaultSystemTest, SheddingReplacesOverflowAndPrefersLowImportance) {
  Config config = ShortConfig();
  config.uq_max = 32;  // tiny queue under the default 400/s stream
  config.shed_by_importance = true;
  sim::Simulator simulator;
  System system(&simulator, config, base::RngSeed(5));
  DropCounter drops;
  system.AddObserver(&drops);
  const RunMetrics metrics = system.Run();
  // Shedding takes over the overflow path entirely...
  EXPECT_EQ(metrics.updates_dropped_uq_overflow, 0u);
  EXPECT_GT(metrics.updates_shed_by_class[0] +
                metrics.updates_shed_by_class[1],
            0u);
  // ...prefers low-importance victims...
  EXPECT_GT(metrics.updates_shed_by_class[0],
            metrics.updates_shed_by_class[1]);
  // ...and reports every eviction through the observer hook.
  EXPECT_EQ(drops.shed_[0], metrics.updates_shed_by_class[0]);
  EXPECT_EQ(drops.shed_[1], metrics.updates_shed_by_class[1]);
}

TEST(FaultSystemTest, SheddingOffKeepsHistoricalOverflowBehavior) {
  Config config = ShortConfig();
  config.uq_max = 32;
  const RunMetrics metrics = RunWith(config);
  EXPECT_GT(metrics.updates_dropped_uq_overflow, 0u);
  EXPECT_EQ(metrics.updates_shed_by_class[0], 0u);
  EXPECT_EQ(metrics.updates_shed_by_class[1], 0u);
}

TEST(FaultSystemTest, FaultWindowBoundariesFireInOrder) {
  Config config = ShortConfig();
  config.faults = "outage@5+2:speedup=8;burst@10+3:factor=2";
  sim::Simulator simulator;
  System system(&simulator, config, base::RngSeed(5));
  WindowWatcher watcher;
  system.AddObserver(&watcher);
  const RunMetrics metrics = system.Run();
  EXPECT_EQ(metrics.fault_windows, 2u);
  ASSERT_EQ(watcher.boundaries_.size(), 4u);
  EXPECT_EQ(watcher.boundaries_[0], "outage+");
  EXPECT_EQ(watcher.boundaries_[1], "outage-");
  EXPECT_EQ(watcher.boundaries_[2], "burst+");
  EXPECT_EQ(watcher.boundaries_[3], "burst-");
}

TEST(FaultSystemTest, OutageRecoveryMetricsArePopulated) {
  Config config = ShortConfig();
  // UF installs eagerly, so the catch-up burst actually heals
  // freshness; the default OD policy may leave the backlog uninstalled
  // for the whole run. The outage starts at t=10, once staleness has
  // reached steady state — an earlier window would pin the recovery
  // target below the steady-state level and recovery would never fire.
  config.policy = PolicyKind::kUpdateFirst;
  config.faults = "outage@10+5:speedup=4";
  const RunMetrics metrics = RunWith(config);
  EXPECT_EQ(metrics.fault_windows, 1u);
  EXPECT_GT(metrics.updates_outage_deferred, 0u);
  // The catch-up burst clears the backlog well before the run ends.
  EXPECT_GE(metrics.outage_recovery_seconds, 0.0);
  EXPECT_LT(metrics.outage_recovery_seconds, 20.0);
  EXPECT_GT(metrics.max_stale_excursion, 0.0);
  // Without faults the recovery fields stay at their sentinels.
  Config clean = ShortConfig();
  const RunMetrics base = RunWith(clean);
  EXPECT_EQ(base.fault_windows, 0u);
  EXPECT_LT(base.outage_recovery_seconds, 0.0);
  EXPECT_EQ(base.ToString().find("faults:"), std::string::npos);
  EXPECT_NE(metrics.ToString().find("faults:"), std::string::npos);
}

TEST(FaultSystemTest, CpuFaultCostsThroughput) {
  Config faulted = ShortConfig();
  faulted.faults = "cpu@0+30:factor=0.2";
  const RunMetrics slow = RunWith(faulted);
  const RunMetrics fast = RunWith(ShortConfig());
  EXPECT_LT(slow.txns_committed, fast.txns_committed);
  EXPECT_GT(slow.txns_missed_in_fault, 0u);
}

TEST(FaultSystemTest, GovernorEngagesUnderOutageAndDisengagesAfter) {
  Config config = ShortConfig();
  config.uq_max = 64;
  config.overload_governor = true;
  config.governor_high_watermark = 0.75;
  config.governor_low_watermark = 0.25;
  config.faults = "outage@5+5:speedup=4";
  sim::Simulator simulator;
  System system(&simulator, config, base::RngSeed(5));
  GovernorWatcher watcher;
  system.AddObserver(&watcher);
  const RunMetrics metrics = system.Run();
  EXPECT_GE(watcher.engages_, 1);
  EXPECT_GE(watcher.disengages_, 1);
  EXPECT_EQ(metrics.governor_engagements,
            static_cast<std::uint64_t>(watcher.engages_));
  EXPECT_GT(metrics.governor_engaged_seconds, 0.0);
  EXPECT_LT(metrics.governor_engaged_seconds, config.sim_seconds);
}

TEST(FaultSystemTest, FaultedRunIsSeedDeterministic) {
  Config config = ShortConfig();
  config.uq_max = 64;
  config.shed_by_importance = true;
  config.overload_governor = true;
  config.faults =
      "outage@5+2:speedup=4;loss@10+3:p=0.2;dup@14+3:p=0.2;"
      "reorder@18+3:p=0.3;burst@22+3:factor=3;cpu@26+2:factor=0.5";
  const RunMetrics a = exp::RunOnce(config, 17);
  const RunMetrics b = exp::RunOnce(config, 17);
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_EQ(a.updates_lost_fault, b.updates_lost_fault);
  EXPECT_EQ(a.updates_duplicated_fault, b.updates_duplicated_fault);
  EXPECT_EQ(a.updates_reordered_fault, b.updates_reordered_fault);
  // A fault schedule actually exercised every injector path.
  EXPECT_GT(a.updates_lost_fault, 0u);
  EXPECT_GT(a.updates_duplicated_fault, 0u);
  EXPECT_GT(a.updates_reordered_fault, 0u);
  EXPECT_GT(a.updates_outage_deferred, 0u);
}

TEST(FaultSystemTest, InvalidSpecIsRejectedByValidate) {
  Config config = ShortConfig();
  config.faults = "loss@5+2";  // missing required p=
  const auto error = config.Validate();
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("requires p="), std::string::npos);
}

}  // namespace
}  // namespace strip::core
