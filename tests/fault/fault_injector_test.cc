// FaultInjector invariants against a reference model: what goes in
// must come out except exactly as the active window prescribes.

#include "fault/fault_injector.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "db/update.h"
#include "fault/fault_schedule.h"
#include "sim/simulator.h"

namespace strip::fault {
namespace {

FaultSchedule Parse(const std::string& spec) {
  std::string error;
  const auto schedule = FaultSchedule::Parse(spec, &error);
  EXPECT_TRUE(schedule.has_value()) << error;
  return *schedule;
}

db::Update MakeUpdate(std::uint64_t id, double generation_time) {
  db::Update update;
  update.id = base::UpdateId(id);
  update.object = {db::ObjectClass::kLowImportance,
                   static_cast<int>(id % 7)};
  update.generation_time = generation_time;
  update.arrival_time = generation_time;
  return update;
}

// Offers `count` updates at 10 ms spacing from t=0 and runs the
// simulated clock out to `horizon`, collecting deliveries.
struct Harness {
  explicit Harness(const std::string& spec, std::uint64_t seed = 7,
                   double nominal_rate = 100) {
    schedule = Parse(spec);
    FaultInjector::Hooks hooks;
    hooks.deliver = [this](const db::Update& update) {
      delivered.push_back(update);
    };
    hooks.set_rate_factor = [this](double f) { rate_factors.push_back(f); };
    hooks.set_cpu_factor = [this](double f) { cpu_factors.push_back(f); };
    injector = std::make_unique<FaultInjector>(&simulator, schedule,
                                               base::RngSeed(seed),
                                               nominal_rate,
                                               std::move(hooks));
  }

  void OfferStream(int count, double interval = 0.01) {
    for (int i = 0; i < count; ++i) {
      simulator.ScheduleAt(i * interval, [this, i, interval] {
        injector->Offer(MakeUpdate(static_cast<std::uint64_t>(i + 1),
                                   i * interval));
      });
    }
  }

  sim::Simulator simulator;
  FaultSchedule schedule;
  std::unique_ptr<FaultInjector> injector;
  std::vector<db::Update> delivered;
  std::vector<double> rate_factors;
  std::vector<double> cpu_factors;
};

TEST(FaultInjectorTest, NoFaultsDeliversEverythingUnchanged) {
  Harness h("loss@100+1:p=1");  // window far beyond the offers
  h.OfferStream(50);
  h.simulator.RunUntil(10);
  ASSERT_EQ(h.delivered.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(h.delivered[i].id.value(), static_cast<std::uint64_t>(i + 1));
  }
  EXPECT_EQ(h.injector->counts().lost, 0u);
}

TEST(FaultInjectorTest, LossProbabilityOneDropsTheWholeWindow) {
  // Offers at 0.00..0.49; loss window covers [0.095, 0.295) — edges
  // deliberately between offer instants so float rounding of the
  // window bounds cannot flip a boundary offer in or out.
  Harness h("loss@0.095+0.2:p=1");
  h.OfferStream(50);
  h.simulator.RunUntil(10);
  // 20 offers fall inside the window: ids 11..30.
  EXPECT_EQ(h.injector->counts().lost, 20u);
  ASSERT_EQ(h.delivered.size(), 30u);
  for (const db::Update& update : h.delivered) {
    EXPECT_TRUE(update.id.value() <= 10 || update.id.value() >= 31)
        << "id " << update.id << " should have been lost";
  }
}

TEST(FaultInjectorTest, DupProbabilityOneDeliversExactlyTwiceDistinctIds) {
  Harness h("dup@0+1:p=1,delay=0.001");
  h.OfferStream(20);
  h.simulator.RunUntil(10);
  EXPECT_EQ(h.injector->counts().duplicated, 20u);
  ASSERT_EQ(h.delivered.size(), 40u);
  // Every original id appears once; every duplicate has a fresh id in
  // the reserved range but targets the same object/generation.
  std::set<std::uint64_t> ids;
  int duplicates = 0;
  for (const db::Update& update : h.delivered) {
    EXPECT_TRUE(ids.insert(update.id.value()).second)
        << "id " << update.id << " delivered twice under the same id";
    if (update.id.value() > (std::uint64_t{1} << 62)) ++duplicates;
  }
  EXPECT_EQ(duplicates, 20);
}

TEST(FaultInjectorTest, ReorderPreservesCountAndPayload) {
  Harness h("reorder@0+1:p=1,delay=0.05");
  h.OfferStream(40);
  h.simulator.RunUntil(20);
  EXPECT_EQ(h.injector->counts().reordered, 40u);
  ASSERT_EQ(h.delivered.size(), 40u);
  // Same multiset of generation times, and each update's arrival_time
  // reflects the real (delayed) delivery instant.
  std::multiset<double> expected, got;
  bool out_of_order = false;
  for (int i = 0; i < 40; ++i) expected.insert(i * 0.01);
  for (std::size_t i = 0; i < h.delivered.size(); ++i) {
    got.insert(h.delivered[i].generation_time);
    EXPECT_GE(h.delivered[i].arrival_time,
              h.delivered[i].generation_time);
    if (i > 0 && h.delivered[i].id < h.delivered[i - 1].id) {
      out_of_order = true;
    }
  }
  EXPECT_EQ(got, expected);
  EXPECT_TRUE(out_of_order) << "p=1 reordering left the stream sorted";
}

TEST(FaultInjectorTest, OutageDefersAndReplaysInOrderAtSpeedup) {
  // Offers at 10 ms spacing ending inside the window; outage covers
  // [0.095, 0.295) (edges between offer instants); nominal rate 100/s
  // and speedup 4 give a catch-up gap of 1/400 s.
  Harness h("outage@0.095+0.2:speedup=4");
  h.OfferStream(30);
  h.simulator.RunUntil(10);
  EXPECT_EQ(h.injector->counts().outage_deferred, 20u);
  ASSERT_EQ(h.delivered.size(), 30u);
  EXPECT_EQ(h.injector->backlog_size(), 0u);
  // All ids delivered, offer order preserved.
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(h.delivered[i].id.value(), static_cast<std::uint64_t>(i + 1));
  }
  // The deferred ids 11..30 arrive after the window end, spaced by the
  // catch-up gap, and their network age reflects the real delay.
  const double end = 0.095 + 0.2;
  const double gap = 1.0 / (4 * 100.0);
  for (int i = 10; i < 30; ++i) {
    const double expected_arrival = end + (i - 10 + 1) * gap;
    EXPECT_NEAR(h.delivered[i].arrival_time, expected_arrival, 1e-12);
    EXPECT_GT(h.delivered[i].arrival_time,
              h.delivered[i].generation_time);
  }
}

TEST(FaultInjectorTest, BurstAndCpuWindowsToggleFactors) {
  Harness h("burst@0.1+0.2:factor=3;cpu@0.4+0.1:factor=0.5");
  h.simulator.RunUntil(1);
  ASSERT_EQ(h.rate_factors.size(), 2u);
  EXPECT_DOUBLE_EQ(h.rate_factors[0], 3.0);
  EXPECT_DOUBLE_EQ(h.rate_factors[1], 1.0);
  ASSERT_EQ(h.cpu_factors.size(), 2u);
  EXPECT_DOUBLE_EQ(h.cpu_factors[0], 0.5);
  EXPECT_DOUBLE_EQ(h.cpu_factors[1], 1.0);
}

TEST(FaultInjectorTest, SameSeedSameSpecIsDeterministic) {
  const std::string spec = "loss@0+1:p=0.3;dup@0+1:p=0.3;reorder@0+1:p=0.3";
  Harness a(spec, /*seed=*/99);
  Harness b(spec, /*seed=*/99);
  a.OfferStream(100);
  b.OfferStream(100);
  a.simulator.RunUntil(30);
  b.simulator.RunUntil(30);
  ASSERT_EQ(a.delivered.size(), b.delivered.size());
  for (std::size_t i = 0; i < a.delivered.size(); ++i) {
    EXPECT_EQ(a.delivered[i].id, b.delivered[i].id);
    EXPECT_DOUBLE_EQ(a.delivered[i].arrival_time,
                     b.delivered[i].arrival_time);
  }
  EXPECT_EQ(a.injector->counts().lost, b.injector->counts().lost);
  EXPECT_EQ(a.injector->counts().duplicated,
            b.injector->counts().duplicated);
  EXPECT_EQ(a.injector->counts().reordered,
            b.injector->counts().reordered);
  // A different seed draws a different realization.
  Harness c(spec, /*seed=*/100);
  c.OfferStream(100);
  c.simulator.RunUntil(30);
  std::vector<std::uint64_t> a_ids, c_ids;
  for (const db::Update& u : a.delivered) a_ids.push_back(u.id.value());
  for (const db::Update& u : c.delivered) c_ids.push_back(u.id.value());
  EXPECT_NE(a_ids, c_ids);
}

}  // namespace
}  // namespace strip::fault
