#include "db/staleness.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace strip::db {
namespace {

constexpr ObjectId kObj{ObjectClass::kLowImportance, 0};
constexpr ObjectId kHighObj{ObjectClass::kHighImportance, 0};

Update MakeUpdate(std::uint64_t id, sim::Time generation,
                  ObjectId object = kObj) {
  Update u;
  u.id = base::UpdateId(id);
  u.object = object;
  u.generation_time = generation;
  u.arrival_time = generation;
  return u;
}

TEST(StalenessNamesTest, CriterionNames) {
  EXPECT_STREQ(StalenessCriterionName(StalenessCriterion::kMaxAge), "MA");
  EXPECT_STREQ(StalenessCriterionName(StalenessCriterion::kUnappliedUpdate),
               "UU");
  EXPECT_STREQ(StalenessCriterionName(StalenessCriterion::kCombined),
               "MA+UU");
}

// ---------- Maximum Age -----------------------------------------------------

TEST(MaxAgeTest, FreshUntilAlpha) {
  sim::Simulator sim;
  StalenessTracker tracker(&sim, StalenessCriterion::kMaxAge, 7.0, 2, 2);
  EXPECT_FALSE(tracker.IsStale(kObj));
  sim.RunUntil(6.9);
  EXPECT_FALSE(tracker.IsStale(kObj));
}

TEST(MaxAgeTest, ObjectExpiresAtAlpha) {
  sim::Simulator sim;
  StalenessTracker tracker(&sim, StalenessCriterion::kMaxAge, 7.0, 2, 2);
  sim.RunUntil(7.5);
  EXPECT_TRUE(tracker.IsStale(kObj));
  EXPECT_EQ(tracker.StaleCount(ObjectClass::kLowImportance), 2);
  EXPECT_EQ(tracker.StaleCount(ObjectClass::kHighImportance), 2);
}

TEST(MaxAgeTest, ApplyRefreshesAndReschedulesExpiry) {
  sim::Simulator sim;
  StalenessTracker tracker(&sim, StalenessCriterion::kMaxAge, 7.0, 2, 2);
  sim.RunUntil(5.0);
  tracker.OnApply(kObj, 5.0);  // fresh value generated right now
  sim.RunUntil(11.0);          // 5 + 7 = 12 > 11: still fresh
  EXPECT_FALSE(tracker.IsStale(kObj));
  sim.RunUntil(12.5);
  EXPECT_TRUE(tracker.IsStale(kObj));
}

TEST(MaxAgeTest, ApplyOfAgedValueCanLeaveObjectStale) {
  sim::Simulator sim;
  StalenessTracker tracker(&sim, StalenessCriterion::kMaxAge, 7.0, 2, 2);
  sim.RunUntil(20.0);
  tracker.OnApply(kObj, 10.0);  // value already 10 seconds old
  EXPECT_TRUE(tracker.IsStale(kObj));
  tracker.OnApply(kObj, 19.0);
  EXPECT_FALSE(tracker.IsStale(kObj));
}

TEST(MaxAgeTest, StaleCountTracksPerPartition) {
  sim::Simulator sim;
  StalenessTracker tracker(&sim, StalenessCriterion::kMaxAge, 7.0, 3, 1);
  sim.RunUntil(8.0);  // everything stale
  EXPECT_EQ(tracker.StaleCount(ObjectClass::kLowImportance), 3);
  EXPECT_EQ(tracker.StaleCount(ObjectClass::kHighImportance), 1);
  tracker.OnApply({ObjectClass::kLowImportance, 1}, 8.0);
  EXPECT_EQ(tracker.StaleCount(ObjectClass::kLowImportance), 2);
  EXPECT_DOUBLE_EQ(tracker.FractionStaleNow(ObjectClass::kLowImportance),
                   2.0 / 3.0);
}

TEST(MaxAgeTest, FractionStaleAverageIsExactIntegral) {
  sim::Simulator sim;
  StalenessTracker tracker(&sim, StalenessCriterion::kMaxAge, 5.0, 1, 1);
  // The single low object: fresh [0,5), stale [5,8), fresh [8,13),
  // stale [13,20]. OnApply at t=8 with generation 8.
  sim.RunUntil(8.0);
  tracker.OnApply({ObjectClass::kLowImportance, 0}, 8.0);
  sim.RunUntil(20.0);
  // Stale time: (8-5) + (20-13) = 10 of 20.
  EXPECT_NEAR(tracker.FractionStaleAverage(ObjectClass::kLowImportance, 20.0),
              0.5, 1e-12);
}

TEST(MaxAgeTest, ResetObservationDropsHistory) {
  sim::Simulator sim;
  StalenessTracker tracker(&sim, StalenessCriterion::kMaxAge, 5.0, 1, 1);
  sim.RunUntil(10.0);  // stale since t=5
  tracker.ResetObservation();
  sim.RunUntil(20.0);  // stale for the whole observed window
  EXPECT_NEAR(tracker.FractionStaleAverage(ObjectClass::kLowImportance, 20.0),
              1.0, 1e-12);
}

// ---------- Unapplied Update ------------------------------------------------

TEST(UnappliedUpdateTest, FreshWithEmptyQueue) {
  sim::Simulator sim;
  StalenessTracker tracker(&sim, StalenessCriterion::kUnappliedUpdate, 0.0,
                           2, 2);
  sim.RunUntil(100.0);  // no max-age under UU: stays fresh forever
  EXPECT_FALSE(tracker.IsStale(kObj));
}

TEST(UnappliedUpdateTest, NewerQueuedUpdateMakesStale) {
  sim::Simulator sim;
  StalenessTracker tracker(&sim, StalenessCriterion::kUnappliedUpdate, 0.0,
                           2, 2);
  sim.RunUntil(1.0);
  tracker.OnEnqueued(MakeUpdate(1, 0.5));
  EXPECT_TRUE(tracker.IsStale(kObj));
  EXPECT_FALSE(tracker.IsStale({ObjectClass::kLowImportance, 1}));
}

TEST(UnappliedUpdateTest, ApplyingTheUpdateMakesFresh) {
  sim::Simulator sim;
  StalenessTracker tracker(&sim, StalenessCriterion::kUnappliedUpdate, 0.0,
                           2, 2);
  const Update u = MakeUpdate(1, 0.5);
  tracker.OnEnqueued(u);
  tracker.OnRemovedFromQueue(u);
  tracker.OnApply(kObj, u.generation_time);
  EXPECT_FALSE(tracker.IsStale(kObj));
}

TEST(UnappliedUpdateTest, OlderQueuedUpdateDoesNotMakeStale) {
  sim::Simulator sim;
  StalenessTracker tracker(&sim, StalenessCriterion::kUnappliedUpdate, 0.0,
                           2, 2);
  tracker.OnApply(kObj, 5.0);
  tracker.OnEnqueued(MakeUpdate(1, 3.0));  // older than the DB value
  EXPECT_FALSE(tracker.IsStale(kObj));
}

TEST(UnappliedUpdateTest, LifoApplyLeavesOnlyWorthlessQueuedUpdates) {
  sim::Simulator sim;
  StalenessTracker tracker(&sim, StalenessCriterion::kUnappliedUpdate, 0.0,
                           2, 2);
  const Update older = MakeUpdate(1, 1.0);
  const Update newer = MakeUpdate(2, 2.0);
  tracker.OnEnqueued(older);
  tracker.OnEnqueued(newer);
  EXPECT_TRUE(tracker.IsStale(kObj));
  // LIFO: the newest is applied first; the older queued update cannot
  // make the data fresher, so the object is semantically fresh.
  tracker.OnRemovedFromQueue(newer);
  tracker.OnApply(kObj, newer.generation_time);
  EXPECT_FALSE(tracker.IsStale(kObj));
  // Discarding the worthless leftover changes nothing.
  tracker.OnRemovedFromQueue(older);
  EXPECT_FALSE(tracker.IsStale(kObj));
}

TEST(UnappliedUpdateTest, DiscardingOnlyPendingUpdateMakesFresh) {
  sim::Simulator sim;
  StalenessTracker tracker(&sim, StalenessCriterion::kUnappliedUpdate, 0.0,
                           2, 2);
  const Update u = MakeUpdate(1, 1.0);
  tracker.OnEnqueued(u);
  EXPECT_TRUE(tracker.IsStale(kObj));
  tracker.OnRemovedFromQueue(u);  // dropped, not applied
  EXPECT_FALSE(tracker.IsStale(kObj));
}

TEST(UnappliedUpdateTest, FractionAverageIntegratesQueueResidence) {
  sim::Simulator sim;
  StalenessTracker tracker(&sim, StalenessCriterion::kUnappliedUpdate, 0.0,
                           1, 1);
  const Update u = MakeUpdate(1, 1.0);
  sim.RunUntil(2.0);
  tracker.OnEnqueued(u);
  sim.RunUntil(6.0);
  tracker.OnRemovedFromQueue(u);
  tracker.OnApply({ObjectClass::kLowImportance, 0}, 1.0);
  sim.RunUntil(10.0);
  // Stale during [2,6] of [0,10].
  EXPECT_NEAR(tracker.FractionStaleAverage(ObjectClass::kLowImportance, 10.0),
              0.4, 1e-12);
}

// ---------- Maximum Age on arrival time --------------------------------------

TEST(MaxAgeArrivalTest, NamesAndDetectability) {
  EXPECT_STREQ(StalenessCriterionName(StalenessCriterion::kMaxAgeArrival),
               "MA-arrival");
  EXPECT_TRUE(DetectableByTimestamp(StalenessCriterion::kMaxAge));
  EXPECT_TRUE(DetectableByTimestamp(StalenessCriterion::kMaxAgeArrival));
  EXPECT_FALSE(
      DetectableByTimestamp(StalenessCriterion::kUnappliedUpdate));
  EXPECT_FALSE(DetectableByTimestamp(StalenessCriterion::kCombined));
}

TEST(MaxAgeArrivalTest, AgesOnArrivalNotGeneration) {
  sim::Simulator sim;
  StalenessTracker tracker(&sim, StalenessCriterion::kMaxAgeArrival, 7.0, 2,
                           2);
  sim.RunUntil(10.0);
  // Value generated at 2 but arrived at 10: under generation-MA it
  // would already be stale (age 8 > 7); under arrival-MA it is fresh
  // until 17.
  tracker.OnApply(kObj, /*generation_time=*/2.0, /*arrival_time=*/10.0);
  EXPECT_FALSE(tracker.IsStale(kObj));
  sim.RunUntil(16.9);
  EXPECT_FALSE(tracker.IsStale(kObj));
  sim.RunUntil(17.5);
  EXPECT_TRUE(tracker.IsStale(kObj));
}

TEST(MaxAgeArrivalTest, InitialObjectsExpireAtAlpha) {
  sim::Simulator sim;
  StalenessTracker tracker(&sim, StalenessCriterion::kMaxAgeArrival, 5.0, 2,
                           2);
  sim.RunUntil(5.5);
  EXPECT_TRUE(tracker.IsStale(kObj));
}

TEST(MaxAgeArrivalTest, TwoArgOnApplyTreatsArrivalAsGeneration) {
  sim::Simulator sim;
  StalenessTracker tracker(&sim, StalenessCriterion::kMaxAgeArrival, 7.0, 2,
                           2);
  sim.RunUntil(10.0);
  tracker.OnApply(kObj, 2.0);  // arrival defaults to generation: age 8 > 7
  EXPECT_TRUE(tracker.IsStale(kObj));
}

// ---------- Combined -----------------------------------------------------------

TEST(CombinedTest, StaleUnderEitherCriterion) {
  sim::Simulator sim;
  StalenessTracker tracker(&sim, StalenessCriterion::kCombined, 7.0, 2, 2);
  // UU-stale before alpha.
  sim.RunUntil(1.0);
  tracker.OnEnqueued(MakeUpdate(1, 0.5));
  EXPECT_TRUE(tracker.IsStale(kObj));
  // Other object: MA-stale after alpha even with empty queue.
  EXPECT_FALSE(tracker.IsStale({ObjectClass::kLowImportance, 1}));
  sim.RunUntil(8.0);
  EXPECT_TRUE(tracker.IsStale({ObjectClass::kLowImportance, 1}));
}

TEST(CombinedTest, FreshRequiresBoth) {
  sim::Simulator sim;
  StalenessTracker tracker(&sim, StalenessCriterion::kCombined, 7.0, 2, 2);
  sim.RunUntil(8.0);
  const Update u = MakeUpdate(1, 7.9);
  tracker.OnEnqueued(u);
  EXPECT_TRUE(tracker.IsStale(kObj));  // stale under both
  tracker.OnRemovedFromQueue(u);
  tracker.OnApply(kObj, u.generation_time);
  EXPECT_FALSE(tracker.IsStale(kObj));
}

// ---------- misc ------------------------------------------------------------------

TEST(StalenessTrackerTest, HighPartitionIsIndependent) {
  sim::Simulator sim;
  StalenessTracker tracker(&sim, StalenessCriterion::kUnappliedUpdate, 0.0,
                           2, 2);
  tracker.OnEnqueued(MakeUpdate(1, 1.0, kHighObj));
  EXPECT_TRUE(tracker.IsStale(kHighObj));
  EXPECT_FALSE(tracker.IsStale(kObj));
  EXPECT_DOUBLE_EQ(tracker.FractionStaleNow(ObjectClass::kHighImportance),
                   0.5);
  EXPECT_DOUBLE_EQ(tracker.FractionStaleNow(ObjectClass::kLowImportance),
                   0.0);
}

TEST(StalenessTrackerDeathTest, InvalidUse) {
  sim::Simulator sim;
  EXPECT_DEATH(
      StalenessTracker(&sim, StalenessCriterion::kMaxAge, 0.0, 2, 2),
      "max age");
  StalenessTracker tracker(&sim, StalenessCriterion::kUnappliedUpdate, 0.0,
                           2, 2);
  EXPECT_DEATH(tracker.OnRemovedFromQueue(MakeUpdate(1, 1.0)),
               "not tracked");
  EXPECT_DEATH(tracker.IsStale({ObjectClass::kLowImportance, 9}),
               "out of range");
}

TEST(StalenessTrackerTest, AccessorsExposeConfiguration) {
  sim::Simulator sim;
  StalenessTracker tracker(&sim, StalenessCriterion::kMaxAge, 7.0, 2, 2);
  EXPECT_EQ(tracker.criterion(), StalenessCriterion::kMaxAge);
  EXPECT_DOUBLE_EQ(tracker.max_age(), 7.0);
}

}  // namespace
}  // namespace strip::db
