#include "db/history_store.h"

#include <gtest/gtest.h>

namespace strip::db {
namespace {

constexpr ObjectId kObj{ObjectClass::kLowImportance, 2};

TEST(HistoryStoreTest, StartsEmpty) {
  HistoryStore history(5, 5, 3);
  EXPECT_EQ(history.VersionCount(kObj), 0);
  EXPECT_TRUE(history.History(kObj).empty());
  EXPECT_FALSE(history.AsOf(kObj, 100.0).has_value());
  EXPECT_EQ(history.recorded(), 0u);
  EXPECT_EQ(history.depth(), 3);
}

TEST(HistoryStoreTest, RecordsInOrder) {
  HistoryStore history(5, 5, 3);
  history.Record(kObj, 1.0, 10.0);
  history.Record(kObj, 2.0, 20.0);
  const auto versions = history.History(kObj);
  ASSERT_EQ(versions.size(), 2u);
  EXPECT_EQ(versions[0], (HistoryStore::Version{1.0, 10.0}));
  EXPECT_EQ(versions[1], (HistoryStore::Version{2.0, 20.0}));
  EXPECT_EQ(history.recorded(), 2u);
}

TEST(HistoryStoreTest, RingEvictsOldest) {
  HistoryStore history(5, 5, 3);
  for (int i = 1; i <= 5; ++i) {
    history.Record(kObj, i, i * 10.0);
  }
  EXPECT_EQ(history.VersionCount(kObj), 3);
  const auto versions = history.History(kObj);
  ASSERT_EQ(versions.size(), 3u);
  EXPECT_DOUBLE_EQ(versions[0].generation_time, 3.0);
  EXPECT_DOUBLE_EQ(versions[2].generation_time, 5.0);
  EXPECT_EQ(history.recorded(), 5u);
}

TEST(HistoryStoreTest, AsOfPicksNewestNotAfter) {
  HistoryStore history(5, 5, 4);
  history.Record(kObj, 1.0, 10.0);
  history.Record(kObj, 3.0, 30.0);
  history.Record(kObj, 5.0, 50.0);
  EXPECT_EQ(history.AsOf(kObj, 4.0)->value, 30.0);
  EXPECT_EQ(history.AsOf(kObj, 5.0)->value, 50.0);  // inclusive
  EXPECT_EQ(history.AsOf(kObj, 99.0)->value, 50.0);
  EXPECT_FALSE(history.AsOf(kObj, 0.5).has_value());
}

TEST(HistoryStoreTest, AsOfBeyondRetentionIsEmpty) {
  HistoryStore history(5, 5, 2);
  history.Record(kObj, 1.0, 10.0);
  history.Record(kObj, 2.0, 20.0);
  history.Record(kObj, 3.0, 30.0);  // evicts gen 1
  EXPECT_FALSE(history.AsOf(kObj, 1.5).has_value());
  EXPECT_EQ(history.AsOf(kObj, 2.5)->value, 20.0);
}

TEST(HistoryStoreTest, ObjectsAreIndependent) {
  HistoryStore history(5, 5, 2);
  history.Record(kObj, 1.0, 10.0);
  EXPECT_EQ(history.VersionCount({ObjectClass::kLowImportance, 3}), 0);
  EXPECT_EQ(history.VersionCount({ObjectClass::kHighImportance, 2}), 0);
  history.Record({ObjectClass::kHighImportance, 2}, 5.0, 50.0);
  EXPECT_EQ(history.VersionCount(kObj), 1);
  EXPECT_EQ(
      history.AsOf({ObjectClass::kHighImportance, 2}, 10.0)->value, 50.0);
}

TEST(HistoryStoreTest, EqualGenerationAllowed) {
  HistoryStore history(5, 5, 3);
  history.Record(kObj, 1.0, 10.0);
  history.Record(kObj, 1.0, 11.0);  // e.g. partial update, same min
  EXPECT_EQ(history.VersionCount(kObj), 2);
  EXPECT_EQ(history.AsOf(kObj, 1.0)->value, 11.0);
}

TEST(HistoryStoreTest, DepthOneKeepsOnlyLatest) {
  HistoryStore history(5, 5, 1);
  history.Record(kObj, 1.0, 10.0);
  history.Record(kObj, 2.0, 20.0);
  EXPECT_EQ(history.VersionCount(kObj), 1);
  EXPECT_EQ(history.History(kObj)[0].value, 20.0);
}

TEST(HistoryStoreDeathTest, InvalidUse) {
  EXPECT_DEATH(HistoryStore(5, 5, 0), "depth");
  HistoryStore history(5, 5, 2);
  history.Record(kObj, 5.0, 1.0);
  EXPECT_DEATH(history.Record(kObj, 4.0, 1.0), "order");
  EXPECT_DEATH(history.VersionCount({ObjectClass::kLowImportance, 99}),
               "out of range");
}

}  // namespace
}  // namespace strip::db
