#include "db/database.h"

#include <gtest/gtest.h>

namespace strip::db {
namespace {

Update MakeUpdate(ObjectId object, sim::Time generation, double value = 1.0) {
  static std::uint64_t next_id = 0;
  Update u;
  u.id = base::UpdateId(++next_id);
  u.object = object;
  u.generation_time = generation;
  u.arrival_time = generation + 0.1;
  u.value = value;
  return u;
}

TEST(DatabaseTest, SizesMatchConstruction) {
  Database db(500, 300);
  EXPECT_EQ(db.size(ObjectClass::kLowImportance), 500);
  EXPECT_EQ(db.size(ObjectClass::kHighImportance), 300);
  EXPECT_EQ(db.total_size(), 800);
}

TEST(DatabaseTest, ObjectsStartAtGenerationZero) {
  Database db(10, 10);
  EXPECT_DOUBLE_EQ(db.generation_time({ObjectClass::kLowImportance, 0}), 0.0);
  EXPECT_DOUBLE_EQ(db.generation_time({ObjectClass::kHighImportance, 9}),
                   0.0);
  EXPECT_DOUBLE_EQ(db.value({ObjectClass::kLowImportance, 3}), 0.0);
}

TEST(DatabaseTest, ApplyWritesNewerValue) {
  Database db(10, 10);
  const ObjectId id{ObjectClass::kLowImportance, 4};
  EXPECT_TRUE(db.Apply(MakeUpdate(id, 5.0, 42.0)));
  EXPECT_DOUBLE_EQ(db.generation_time(id), 5.0);
  EXPECT_DOUBLE_EQ(db.value(id), 42.0);
  EXPECT_EQ(db.writes(), 1u);
  EXPECT_EQ(db.skipped_writes(), 0u);
}

TEST(DatabaseTest, WorthinessCheckSkipsOlderUpdate) {
  Database db(10, 10);
  const ObjectId id{ObjectClass::kHighImportance, 2};
  ASSERT_TRUE(db.Apply(MakeUpdate(id, 5.0, 1.0)));
  EXPECT_FALSE(db.Apply(MakeUpdate(id, 3.0, 2.0)));
  EXPECT_DOUBLE_EQ(db.generation_time(id), 5.0);
  EXPECT_DOUBLE_EQ(db.value(id), 1.0);
  EXPECT_EQ(db.skipped_writes(), 1u);
}

TEST(DatabaseTest, WorthinessCheckSkipsEqualGeneration) {
  Database db(10, 10);
  const ObjectId id{ObjectClass::kLowImportance, 0};
  ASSERT_TRUE(db.Apply(MakeUpdate(id, 5.0, 1.0)));
  EXPECT_FALSE(db.Apply(MakeUpdate(id, 5.0, 2.0)));
  EXPECT_DOUBLE_EQ(db.value(id), 1.0);
}

TEST(DatabaseTest, PartitionsAreIndependent) {
  Database db(10, 10);
  ASSERT_TRUE(db.Apply(MakeUpdate({ObjectClass::kLowImportance, 3}, 5.0)));
  EXPECT_DOUBLE_EQ(db.generation_time({ObjectClass::kHighImportance, 3}),
                   0.0);
}

TEST(DatabaseTest, AgeAt) {
  Database db(10, 10);
  const ObjectId id{ObjectClass::kLowImportance, 1};
  ASSERT_TRUE(db.Apply(MakeUpdate(id, 4.0)));
  EXPECT_DOUBLE_EQ(db.AgeAt(id, 10.0), 6.0);
}

TEST(DatabaseTest, SequenceOfNewerUpdatesAllApply) {
  Database db(10, 10);
  const ObjectId id{ObjectClass::kLowImportance, 7};
  for (int i = 1; i <= 10; ++i) {
    EXPECT_TRUE(db.Apply(MakeUpdate(id, i, i * 1.0)));
  }
  EXPECT_EQ(db.writes(), 10u);
  EXPECT_DOUBLE_EQ(db.value(id), 10.0);
}

TEST(DatabaseDeathTest, OutOfRangeIndexDies) {
  Database db(10, 10);
  EXPECT_DEATH(db.generation_time({ObjectClass::kLowImportance, 10}),
               "out of range");
  EXPECT_DEATH(db.generation_time({ObjectClass::kLowImportance, -1}),
               "out of range");
  EXPECT_DEATH(db.Apply(MakeUpdate({ObjectClass::kHighImportance, 99}, 1.0)),
               "out of range");
}

// ---------- partial updates (multi-attribute objects) -----------------------

Update MakePartial(ObjectId object, int attribute, sim::Time generation,
                   double value = 1.0) {
  Update u = MakeUpdate(object, generation, value);
  u.attribute = attribute;
  return u;
}

TEST(PartialUpdateTest, SingleAttributeDatabaseByDefault) {
  Database db(4, 4);
  EXPECT_EQ(db.n_attributes(), 1);
  EXPECT_DOUBLE_EQ(
      db.attribute_generation({ObjectClass::kLowImportance, 0}, 0), 0.0);
}

TEST(PartialUpdateTest, EffectiveGenerationIsOldestAttribute) {
  Database db(4, 4, /*n_attributes=*/3);
  const ObjectId id{ObjectClass::kLowImportance, 1};
  EXPECT_TRUE(db.Apply(MakePartial(id, 0, 5.0)));
  EXPECT_TRUE(db.Apply(MakePartial(id, 1, 7.0)));
  // Attribute 2 still at generation 0 -> object effectively at 0.
  EXPECT_DOUBLE_EQ(db.generation_time(id), 0.0);
  EXPECT_TRUE(db.Apply(MakePartial(id, 2, 6.0)));
  EXPECT_DOUBLE_EQ(db.generation_time(id), 5.0);
  EXPECT_DOUBLE_EQ(db.attribute_generation(id, 1), 7.0);
}

TEST(PartialUpdateTest, WorthinessIsPerAttribute) {
  Database db(4, 4, 2);
  const ObjectId id{ObjectClass::kLowImportance, 0};
  ASSERT_TRUE(db.Apply(MakePartial(id, 0, 5.0)));
  // Older than attribute 0 -> unworthy for attribute 0...
  EXPECT_FALSE(db.IsWorthy(MakePartial(id, 0, 4.0)));
  // ...but worthy for attribute 1, which is still at 0.
  EXPECT_TRUE(db.IsWorthy(MakePartial(id, 1, 4.0)));
  EXPECT_TRUE(db.Apply(MakePartial(id, 1, 4.0)));
  EXPECT_DOUBLE_EQ(db.generation_time(id), 4.0);
}

TEST(PartialUpdateTest, CompleteUpdateRefreshesEveryAttribute) {
  Database db(4, 4, 3);
  const ObjectId id{ObjectClass::kLowImportance, 2};
  ASSERT_TRUE(db.Apply(MakePartial(id, 0, 3.0)));
  Update complete = MakeUpdate(id, 8.0, 99.0);  // attribute = -1
  EXPECT_TRUE(db.Apply(complete));
  EXPECT_DOUBLE_EQ(db.generation_time(id), 8.0);
  for (int a = 0; a < 3; ++a) {
    EXPECT_DOUBLE_EQ(db.attribute_generation(id, a), 8.0);
  }
  // A complete update older than the effective generation is unworthy.
  EXPECT_FALSE(db.IsWorthy(MakeUpdate(id, 7.0)));
}

TEST(PartialUpdateTest, EffectiveGenerationIsMonotone) {
  Database db(4, 4, 2);
  const ObjectId id{ObjectClass::kLowImportance, 3};
  double last = db.generation_time(id);
  for (int i = 1; i <= 20; ++i) {
    db.Apply(MakePartial(id, i % 2, static_cast<double>(i)));
    EXPECT_GE(db.generation_time(id), last);
    last = db.generation_time(id);
  }
}

TEST(PartialUpdateDeathTest, AttributeOutOfRangeDies) {
  Database db(4, 4, 2);
  const ObjectId id{ObjectClass::kLowImportance, 0};
  EXPECT_DEATH(db.Apply(MakePartial(id, 2, 1.0)), "attribute");
  EXPECT_DEATH(db.attribute_generation(id, 5), "attribute");
}

TEST(ObjectClassTest, Names) {
  EXPECT_STREQ(ObjectClassName(ObjectClass::kLowImportance), "low");
  EXPECT_STREQ(ObjectClassName(ObjectClass::kHighImportance), "high");
}

TEST(ObjectIdTest, EqualityAndHash) {
  const ObjectId a{ObjectClass::kLowImportance, 3};
  const ObjectId b{ObjectClass::kLowImportance, 3};
  const ObjectId c{ObjectClass::kHighImportance, 3};
  const ObjectId d{ObjectClass::kLowImportance, 4};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  ObjectIdHash hash;
  EXPECT_EQ(hash(a), hash(b));
  EXPECT_NE(hash(a), hash(c));
}

}  // namespace
}  // namespace strip::db
