// Randomized churn: the pooled UpdateQueue against a naive reference
// model (a flat vector re-scanned per operation). Hundreds of
// thousands of mixed push / pop / class-pop / purge / remove / peek
// operations on a small bounded queue, so overflow eviction and
// compaction fire constantly.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "db/object.h"
#include "db/update.h"
#include "db/update_queue.h"

namespace strip::db {
namespace {

bool Earlier(const Update& a, const Update& b) {
  if (a.generation_time != b.generation_time) {
    return a.generation_time < b.generation_time;
  }
  return a.id < b.id;
}

// The naive model: every queued update in one vector, every operation
// a linear scan — trivially correct.
class ReferenceQueue {
 public:
  explicit ReferenceQueue(std::size_t max_size) : max_size_(max_size) {}

  std::vector<Update> Push(const Update& update) {
    updates_.push_back(update);
    std::vector<Update> evicted;
    while (updates_.size() > max_size_) {
      evicted.push_back(*PopOldest());
      ++overflow_drops_;
    }
    return evicted;
  }

  std::optional<Update> PopOldest() { return Take(OldestIndex(nullptr)); }
  std::optional<Update> PopNewest() { return Take(NewestIndex(nullptr)); }
  std::optional<Update> PopOldestOfClass(ObjectClass cls) {
    return Take(OldestIndex(&cls));
  }
  std::optional<Update> PopNewestOfClass(ObjectClass cls) {
    return Take(NewestIndex(&cls));
  }

  std::size_t SizeOfClass(ObjectClass cls) const {
    std::size_t n = 0;
    for (const Update& u : updates_) n += u.object.cls == cls ? 1 : 0;
    return n;
  }

  std::vector<Update> PurgeGeneratedBefore(double cutoff) {
    std::vector<Update> purged;
    for (const Update& u : updates_) {
      if (u.generation_time < cutoff) purged.push_back(u);
    }
    std::sort(purged.begin(), purged.end(), Earlier);
    updates_.erase(std::remove_if(updates_.begin(), updates_.end(),
                                  [cutoff](const Update& u) {
                                    return u.generation_time < cutoff;
                                  }),
                   updates_.end());
    return purged;
  }

  std::optional<Update> PeekNewestFor(ObjectId object) const {
    std::optional<Update> newest;
    for (const Update& u : updates_) {
      if (u.object == object && (!newest || Earlier(*newest, u))) newest = u;
    }
    return newest;
  }

  bool Remove(const Update& update) {
    for (std::size_t i = 0; i < updates_.size(); ++i) {
      if (updates_[i].id == update.id) {
        updates_.erase(updates_.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  }

  bool HasUpdateFor(ObjectId object) const {
    for (const Update& u : updates_) {
      if (u.object == object) return true;
    }
    return false;
  }

  std::size_t size() const { return updates_.size(); }
  std::uint64_t overflow_drops() const { return overflow_drops_; }

  double OldestGeneration() const {
    return updates_[*OldestIndex(nullptr)].generation_time;
  }
  double NewestGeneration() const {
    return updates_[*NewestIndex(nullptr)].generation_time;
  }

  const Update& At(std::size_t i) const { return updates_[i]; }

 private:
  std::optional<std::size_t> OldestIndex(const ObjectClass* cls) const {
    std::optional<std::size_t> best;
    for (std::size_t i = 0; i < updates_.size(); ++i) {
      if (cls != nullptr && updates_[i].object.cls != *cls) continue;
      if (!best || Earlier(updates_[i], updates_[*best])) best = i;
    }
    return best;
  }

  std::optional<std::size_t> NewestIndex(const ObjectClass* cls) const {
    std::optional<std::size_t> best;
    for (std::size_t i = 0; i < updates_.size(); ++i) {
      if (cls != nullptr && updates_[i].object.cls != *cls) continue;
      if (!best || Earlier(updates_[*best], updates_[i])) best = i;
    }
    return best;
  }

  std::optional<Update> Take(std::optional<std::size_t> index) {
    if (!index.has_value()) return std::nullopt;
    const Update update = updates_[*index];
    updates_.erase(updates_.begin() + static_cast<std::ptrdiff_t>(*index));
    return update;
  }

  std::size_t max_size_;
  std::vector<Update> updates_;
  std::uint64_t overflow_drops_ = 0;
};

void ExpectSameUpdate(const std::optional<Update>& actual,
                      const std::optional<Update>& expected) {
  ASSERT_EQ(actual.has_value(), expected.has_value());
  if (actual.has_value()) {
    EXPECT_EQ(actual->id, expected->id);
    EXPECT_EQ(actual->generation_time, expected->generation_time);
    EXPECT_EQ(actual->object, expected->object);
  }
}

TEST(UpdateQueueChurnTest, MatchesReferenceOverRandomizedChurn) {
  // Small bound: overflow eviction triggers thousands of times.
  constexpr std::size_t kBound = 96;
  UpdateQueue queue(kBound);
  ReferenceQueue reference(kBound);
  std::mt19937_64 rng(20260806);

  std::uint64_t next_id = 1;
  double now = 0;

  constexpr int kOps = 120000;
  for (int op = 0; op < kOps; ++op) {
    now += 0.01;
    const int roll = static_cast<int>(rng() % 100);
    if (roll < 50) {
      // Push. Coarse time quantization makes generation-time ties
      // common; times within [now - 2, now] mix near-sorted and
      // out-of-order arrivals.
      Update update;
      update.id = base::UpdateId(next_id++);
      update.object = {rng() % 2 == 0 ? ObjectClass::kLowImportance
                                      : ObjectClass::kHighImportance,
                       static_cast<int>(rng() % 40)};
      update.generation_time =
          now - static_cast<double>(rng() % 16) * 0.125;
      update.arrival_time = now;
      update.value = static_cast<double>(update.id.value());
      const auto evicted = queue.Push(update);
      const auto expected = reference.Push(update);
      ASSERT_EQ(evicted.size(), expected.size());
      for (std::size_t i = 0; i < evicted.size(); ++i) {
        EXPECT_EQ(evicted[i].id, expected[i].id);
      }
    } else if (roll < 60) {
      ExpectSameUpdate(queue.PopOldest(), reference.PopOldest());
    } else if (roll < 66) {
      ExpectSameUpdate(queue.PopNewest(), reference.PopNewest());
    } else if (roll < 72) {
      const auto cls = rng() % 2 == 0 ? ObjectClass::kLowImportance
                                      : ObjectClass::kHighImportance;
      ExpectSameUpdate(queue.PopOldestOfClass(cls),
                       reference.PopOldestOfClass(cls));
    } else if (roll < 78) {
      const auto cls = rng() % 2 == 0 ? ObjectClass::kLowImportance
                                      : ObjectClass::kHighImportance;
      ExpectSameUpdate(queue.PopNewestOfClass(cls),
                       reference.PopNewestOfClass(cls));
    } else if (roll < 84) {
      // Maximum-Age purge of a random-depth prefix.
      const double cutoff = now - static_cast<double>(rng() % 20) * 0.1;
      const auto purged = queue.PurgeGeneratedBefore(cutoff);
      const auto expected = reference.PurgeGeneratedBefore(cutoff);
      ASSERT_EQ(purged.size(), expected.size());
      for (std::size_t i = 0; i < purged.size(); ++i) {
        EXPECT_EQ(purged[i].id, expected[i].id);
      }
    } else if (roll < 92) {
      // Peek / membership for a random object.
      const ObjectId object = {rng() % 2 == 0 ? ObjectClass::kLowImportance
                                              : ObjectClass::kHighImportance,
                               static_cast<int>(rng() % 40)};
      ExpectSameUpdate(queue.PeekNewestFor(object),
                       reference.PeekNewestFor(object));
      EXPECT_EQ(queue.HasUpdateFor(object), reference.HasUpdateFor(object));
    } else if (reference.size() > 0) {
      // Remove a random resident update, then the same one again (the
      // second attempt must fail).
      const Update victim = reference.At(rng() % reference.size());
      EXPECT_TRUE(queue.Remove(victim));
      EXPECT_TRUE(reference.Remove(victim));
      EXPECT_FALSE(queue.Remove(victim));
    }

    ASSERT_EQ(queue.size(), reference.size());
    EXPECT_EQ(queue.overflow_drops(), reference.overflow_drops());
    EXPECT_EQ(queue.SizeOfClass(ObjectClass::kLowImportance),
              reference.SizeOfClass(ObjectClass::kLowImportance));
    EXPECT_EQ(queue.SizeOfClass(ObjectClass::kHighImportance),
              reference.SizeOfClass(ObjectClass::kHighImportance));
    if (!queue.empty()) {
      EXPECT_EQ(queue.OldestGeneration(), reference.OldestGeneration());
      EXPECT_EQ(queue.NewestGeneration(), reference.NewestGeneration());
    }
  }

  // Drain in FIFO order; every remaining update must match.
  while (auto popped = queue.PopOldest()) {
    ExpectSameUpdate(popped, reference.PopOldest());
  }
  EXPECT_EQ(reference.size(), 0u);
}

// A sustained near-sorted FIFO stream (the paper's workload shape):
// ids must come out in generation order and evictions must count.
TEST(UpdateQueueChurnTest, SortedStreamOverflowKeepsNewest) {
  constexpr std::size_t kBound = 64;
  UpdateQueue queue(kBound);
  std::uint64_t id = 0;
  for (int i = 0; i < 100000; ++i) {
    Update update;
    update.id = base::UpdateId(++id);
    update.object = {ObjectClass::kLowImportance, static_cast<int>(i % 10)};
    update.generation_time = static_cast<double>(i);
    const auto evicted = queue.Push(update);
    if (i < static_cast<int>(kBound)) {
      EXPECT_TRUE(evicted.empty());
    } else {
      ASSERT_EQ(evicted.size(), 1u);
      EXPECT_EQ(evicted[0].id.value(), id - kBound);
    }
  }
  EXPECT_EQ(queue.size(), kBound);
  EXPECT_EQ(queue.overflow_drops(), 100000 - kBound);
  // The survivors are exactly the newest kBound, in order.
  for (std::uint64_t expect = 100000 - kBound + 1; expect <= 100000;
       ++expect) {
    auto popped = queue.PopOldest();
    ASSERT_TRUE(popped.has_value());
    EXPECT_EQ(popped->id.value(), expect);
  }
  EXPECT_TRUE(queue.empty());
}

}  // namespace
}  // namespace strip::db
