#include "db/os_queue.h"

#include <gtest/gtest.h>

namespace strip::db {
namespace {

Update MakeUpdate(std::uint64_t id) {
  Update u;
  u.id = base::UpdateId(id);
  u.object = {ObjectClass::kLowImportance, 0};
  u.generation_time = static_cast<sim::Time>(id);
  return u;
}

TEST(OsQueueTest, StartsEmpty) {
  OsQueue queue(4);
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_FALSE(queue.Pop().has_value());
  EXPECT_FALSE(queue.Peek().has_value());
}

TEST(OsQueueTest, FifoOrder) {
  OsQueue queue(4);
  EXPECT_TRUE(queue.Push(MakeUpdate(1)));
  EXPECT_TRUE(queue.Push(MakeUpdate(2)));
  EXPECT_TRUE(queue.Push(MakeUpdate(3)));
  EXPECT_EQ(queue.Pop()->id.value(), 1u);
  EXPECT_EQ(queue.Pop()->id.value(), 2u);
  EXPECT_EQ(queue.Pop()->id.value(), 3u);
}

TEST(OsQueueTest, PeekDoesNotRemove) {
  OsQueue queue(4);
  queue.Push(MakeUpdate(7));
  EXPECT_EQ(queue.Peek()->id.value(), 7u);
  EXPECT_EQ(queue.size(), 1u);
}

TEST(OsQueueTest, OverflowDropsArrival) {
  OsQueue queue(2);
  EXPECT_TRUE(queue.Push(MakeUpdate(1)));
  EXPECT_TRUE(queue.Push(MakeUpdate(2)));
  EXPECT_FALSE(queue.Push(MakeUpdate(3)));
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.overflow_drops(), 1u);
  // The queued entries are untouched by the failed push.
  EXPECT_EQ(queue.Pop()->id.value(), 1u);
}

TEST(OsQueueTest, SpaceFreedByPopIsReusable) {
  OsQueue queue(1);
  EXPECT_TRUE(queue.Push(MakeUpdate(1)));
  EXPECT_FALSE(queue.Push(MakeUpdate(2)));
  queue.Pop();
  EXPECT_TRUE(queue.Push(MakeUpdate(3)));
  EXPECT_EQ(queue.Pop()->id.value(), 3u);
}

TEST(OsQueueTest, MaxSizeAccessor) {
  OsQueue queue(4000);
  EXPECT_EQ(queue.max_size(), 4000u);
}

TEST(OsQueueDeathTest, ZeroBoundDies) { EXPECT_DEATH(OsQueue(0), "positive"); }

}  // namespace
}  // namespace strip::db
