#include "db/general_store.h"

#include <gtest/gtest.h>

namespace strip::db {
namespace {

TEST(GeneralStoreTest, StartsEmpty) {
  GeneralStore store;
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(store.Get("anything").has_value());
}

TEST(GeneralStoreTest, PutThenGet) {
  GeneralStore store;
  store.Put("cash_usd", 1000.0);
  ASSERT_TRUE(store.Get("cash_usd").has_value());
  EXPECT_DOUBLE_EQ(*store.Get("cash_usd"), 1000.0);
  EXPECT_EQ(store.size(), 1u);
}

TEST(GeneralStoreTest, PutOverwrites) {
  GeneralStore store;
  store.Put("position", 5.0);
  store.Put("position", -2.0);
  EXPECT_DOUBLE_EQ(*store.Get("position"), -2.0);
  EXPECT_EQ(store.size(), 1u);
}

TEST(GeneralStoreTest, EraseRemovesAndReports) {
  GeneralStore store;
  store.Put("a", 1.0);
  EXPECT_TRUE(store.Erase("a"));
  EXPECT_FALSE(store.Erase("a"));
  EXPECT_FALSE(store.Get("a").has_value());
  EXPECT_EQ(store.size(), 0u);
}

TEST(GeneralStoreTest, KeysAreIndependent) {
  GeneralStore store;
  store.Put("a", 1.0);
  store.Put("b", 2.0);
  store.Erase("a");
  EXPECT_DOUBLE_EQ(*store.Get("b"), 2.0);
}

}  // namespace
}  // namespace strip::db
