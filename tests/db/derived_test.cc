#include "db/derived.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace strip::db {
namespace {

using Aggregation = DerivedRegistry::Aggregation;

Update MakeUpdate(std::uint64_t id, ObjectId object, sim::Time generation,
                  double value) {
  Update u;
  u.id = base::UpdateId(id);
  u.object = object;
  u.generation_time = generation;
  u.arrival_time = generation;
  u.value = value;
  return u;
}

DerivedRegistry::Definition Portfolio(Aggregation aggregation) {
  DerivedRegistry::Definition def;
  def.name = "portfolio";
  def.aggregation = aggregation;
  def.inputs = {{ObjectClass::kHighImportance, 0},
                {ObjectClass::kHighImportance, 1},
                {ObjectClass::kHighImportance, 2}};
  return def;
}

TEST(DerivedRegistryTest, DefineAssignsDenseIds) {
  DerivedRegistry registry;
  EXPECT_EQ(registry.size(), 0);
  EXPECT_EQ(registry.Define(Portfolio(Aggregation::kAverage)), 0);
  EXPECT_EQ(registry.Define(Portfolio(Aggregation::kSum)), 1);
  EXPECT_EQ(registry.size(), 2);
  EXPECT_EQ(registry.Get(0).name, "portfolio");
  EXPECT_EQ(registry.Get(1).aggregation, Aggregation::kSum);
}

TEST(DerivedRegistryTest, AggregationsOverDatabaseValues) {
  Database database(4, 4);
  database.Apply(MakeUpdate(1, {ObjectClass::kHighImportance, 0}, 1.0, 10));
  database.Apply(MakeUpdate(2, {ObjectClass::kHighImportance, 1}, 1.0, 20));
  database.Apply(MakeUpdate(3, {ObjectClass::kHighImportance, 2}, 1.0, 60));

  DerivedRegistry registry;
  const int avg = registry.Define(Portfolio(Aggregation::kAverage));
  const int sum = registry.Define(Portfolio(Aggregation::kSum));
  const int min = registry.Define(Portfolio(Aggregation::kMin));
  const int max = registry.Define(Portfolio(Aggregation::kMax));
  EXPECT_DOUBLE_EQ(registry.Value(avg, database), 30.0);
  EXPECT_DOUBLE_EQ(registry.Value(sum, database), 90.0);
  EXPECT_DOUBLE_EQ(registry.Value(min, database), 10.0);
  EXPECT_DOUBLE_EQ(registry.Value(max, database), 60.0);
}

TEST(DerivedRegistryTest, EffectiveGenerationIsOldestInput) {
  Database database(4, 4);
  database.Apply(MakeUpdate(1, {ObjectClass::kHighImportance, 0}, 5.0, 1));
  database.Apply(MakeUpdate(2, {ObjectClass::kHighImportance, 1}, 2.0, 1));
  database.Apply(MakeUpdate(3, {ObjectClass::kHighImportance, 2}, 9.0, 1));
  DerivedRegistry registry;
  const int id = registry.Define(Portfolio(Aggregation::kAverage));
  EXPECT_DOUBLE_EQ(registry.EffectiveGeneration(id, database), 2.0);
}

TEST(DerivedRegistryTest, StaleIfAnyInputStale) {
  sim::Simulator sim;
  StalenessTracker tracker(&sim, StalenessCriterion::kMaxAge, 7.0, 4, 4);
  DerivedRegistry registry;
  const int id = registry.Define(Portfolio(Aggregation::kAverage));
  EXPECT_FALSE(registry.IsStale(id, tracker));

  // Refresh inputs 0 and 2 but let input 1 expire.
  sim.RunUntil(6.0);
  tracker.OnApply({ObjectClass::kHighImportance, 0}, 6.0);
  tracker.OnApply({ObjectClass::kHighImportance, 2}, 6.0);
  sim.RunUntil(8.0);  // input 1's initial value (gen 0) is now stale
  EXPECT_TRUE(registry.IsStale(id, tracker));
  const auto stale = registry.StaleInputs(id, tracker);
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0], (ObjectId{ObjectClass::kHighImportance, 1}));
}

TEST(DerivedRegistryTest, FresheningUpdatesAnswersTheOdQuestion) {
  Database database(4, 4);
  UpdateQueue queue(16);
  DerivedRegistry registry;
  const int id = registry.Define(Portfolio(Aggregation::kAverage));

  // Input 0: a worthy update queued. Input 1: only an unworthy (older)
  // one. Input 2: nothing queued.
  database.Apply(MakeUpdate(1, {ObjectClass::kHighImportance, 1}, 5.0, 1));
  queue.Push(MakeUpdate(10, {ObjectClass::kHighImportance, 0}, 4.0, 2));
  queue.Push(MakeUpdate(11, {ObjectClass::kHighImportance, 0}, 6.0, 3));
  queue.Push(MakeUpdate(12, {ObjectClass::kHighImportance, 1}, 3.0, 4));

  const auto updates = registry.FresheningUpdates(id, database, queue);
  ASSERT_EQ(updates.size(), 1u);
  EXPECT_EQ(updates[0].id.value(), 11u);  // the newest worthy one for input 0
}

TEST(DerivedRegistryTest, UuStalenessPropagates) {
  sim::Simulator sim;
  StalenessTracker tracker(&sim, StalenessCriterion::kUnappliedUpdate, 0.0,
                           4, 4);
  DerivedRegistry registry;
  const int id = registry.Define(Portfolio(Aggregation::kAverage));
  EXPECT_FALSE(registry.IsStale(id, tracker));
  // A queued newer update for one constituent makes the whole
  // portfolio UU-stale.
  tracker.OnEnqueued(
      MakeUpdate(1, {ObjectClass::kHighImportance, 1}, 1.0, 5.0));
  EXPECT_TRUE(registry.IsStale(id, tracker));
  EXPECT_EQ(registry.StaleInputs(id, tracker).size(), 1u);
}

TEST(DerivedRegistryDeathTest, InvalidUse) {
  DerivedRegistry registry;
  DerivedRegistry::Definition empty;
  empty.name = "empty";
  EXPECT_DEATH(registry.Define(empty), "at least one input");
  EXPECT_DEATH(registry.Get(0), "out of range");
}

}  // namespace
}  // namespace strip::db
