#include "db/update_queue.h"

#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "sim/random.h"

namespace strip::db {
namespace {

Update MakeUpdate(std::uint64_t id, sim::Time generation,
                  ObjectId object = {ObjectClass::kLowImportance, 0}) {
  Update u;
  u.id = base::UpdateId(id);
  u.object = object;
  u.generation_time = generation;
  u.arrival_time = generation + 0.1;
  u.value = static_cast<double>(id);
  return u;
}

TEST(UpdateQueueTest, StartsEmpty) {
  UpdateQueue queue(10);
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_FALSE(queue.PopOldest().has_value());
  EXPECT_FALSE(queue.PopNewest().has_value());
}

TEST(UpdateQueueTest, PopOldestFollowsGenerationOrder) {
  UpdateQueue queue(10);
  queue.Push(MakeUpdate(1, 3.0));
  queue.Push(MakeUpdate(2, 1.0));
  queue.Push(MakeUpdate(3, 2.0));
  EXPECT_EQ(queue.PopOldest()->id.value(), 2u);
  EXPECT_EQ(queue.PopOldest()->id.value(), 3u);
  EXPECT_EQ(queue.PopOldest()->id.value(), 1u);
}

TEST(UpdateQueueTest, PopNewestIsReverseGenerationOrder) {
  UpdateQueue queue(10);
  queue.Push(MakeUpdate(1, 3.0));
  queue.Push(MakeUpdate(2, 1.0));
  queue.Push(MakeUpdate(3, 2.0));
  EXPECT_EQ(queue.PopNewest()->id.value(), 1u);
  EXPECT_EQ(queue.PopNewest()->id.value(), 3u);
  EXPECT_EQ(queue.PopNewest()->id.value(), 2u);
}

TEST(UpdateQueueTest, GenerationTiesBreakById) {
  UpdateQueue queue(10);
  queue.Push(MakeUpdate(5, 1.0));
  queue.Push(MakeUpdate(3, 1.0));
  queue.Push(MakeUpdate(7, 1.0));
  EXPECT_EQ(queue.PopOldest()->id.value(), 3u);
  EXPECT_EQ(queue.PopOldest()->id.value(), 5u);
  EXPECT_EQ(queue.PopOldest()->id.value(), 7u);
}

TEST(UpdateQueueTest, OverflowEvictsOldestGeneration) {
  UpdateQueue queue(3);
  queue.Push(MakeUpdate(1, 1.0));
  queue.Push(MakeUpdate(2, 2.0));
  queue.Push(MakeUpdate(3, 3.0));
  const std::vector<Update> evicted = queue.Push(MakeUpdate(4, 4.0));
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].id.value(), 1u);
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.overflow_drops(), 1u);
}

TEST(UpdateQueueTest, OverflowCanEvictThePushedUpdateItself) {
  UpdateQueue queue(2);
  queue.Push(MakeUpdate(1, 5.0));
  queue.Push(MakeUpdate(2, 6.0));
  // Older than everything in a full queue: it is the one dropped.
  const std::vector<Update> evicted = queue.Push(MakeUpdate(3, 1.0));
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].id.value(), 3u);
  EXPECT_EQ(queue.OldestGeneration(), 5.0);
}

TEST(UpdateQueueTest, PurgeRemovesStrictlyOlderGenerations) {
  UpdateQueue queue(10);
  queue.Push(MakeUpdate(1, 1.0));
  queue.Push(MakeUpdate(2, 2.0));
  queue.Push(MakeUpdate(3, 3.0));
  const std::vector<Update> purged = queue.PurgeGeneratedBefore(2.0);
  ASSERT_EQ(purged.size(), 1u);
  EXPECT_EQ(purged[0].id.value(), 1u);
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.OldestGeneration(), 2.0);
}

TEST(UpdateQueueTest, PurgeReturnsOldestFirst) {
  UpdateQueue queue(10);
  queue.Push(MakeUpdate(1, 3.0));
  queue.Push(MakeUpdate(2, 1.0));
  queue.Push(MakeUpdate(3, 2.0));
  const std::vector<Update> purged = queue.PurgeGeneratedBefore(10.0);
  ASSERT_EQ(purged.size(), 3u);
  EXPECT_EQ(purged[0].id.value(), 2u);
  EXPECT_EQ(purged[1].id.value(), 3u);
  EXPECT_EQ(purged[2].id.value(), 1u);
  EXPECT_TRUE(queue.empty());
}

TEST(UpdateQueueTest, PeekNewestForObject) {
  UpdateQueue queue(10);
  const ObjectId a{ObjectClass::kLowImportance, 1};
  const ObjectId b{ObjectClass::kLowImportance, 2};
  queue.Push(MakeUpdate(1, 1.0, a));
  queue.Push(MakeUpdate(2, 3.0, a));
  queue.Push(MakeUpdate(3, 2.0, b));
  const auto newest_a = queue.PeekNewestFor(a);
  ASSERT_TRUE(newest_a.has_value());
  EXPECT_EQ(newest_a->id.value(), 2u);
  EXPECT_EQ(queue.size(), 3u);  // peek does not remove
  EXPECT_EQ(queue.PeekNewestFor(b)->id.value(), 3u);
  EXPECT_FALSE(
      queue.PeekNewestFor({ObjectClass::kHighImportance, 1}).has_value());
}

TEST(UpdateQueueTest, HasUpdateFor) {
  UpdateQueue queue(10);
  const ObjectId a{ObjectClass::kLowImportance, 1};
  EXPECT_FALSE(queue.HasUpdateFor(a));
  queue.Push(MakeUpdate(1, 1.0, a));
  EXPECT_TRUE(queue.HasUpdateFor(a));
  queue.PopOldest();
  EXPECT_FALSE(queue.HasUpdateFor(a));
}

TEST(UpdateQueueTest, RemoveSpecificUpdate) {
  UpdateQueue queue(10);
  const ObjectId a{ObjectClass::kLowImportance, 1};
  const Update u1 = MakeUpdate(1, 1.0, a);
  const Update u2 = MakeUpdate(2, 2.0, a);
  queue.Push(u1);
  queue.Push(u2);
  EXPECT_TRUE(queue.Remove(u1));
  EXPECT_FALSE(queue.Remove(u1));  // already gone
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.PeekNewestFor(a)->id.value(), 2u);
}

TEST(UpdateQueueTest, OldestNewestGeneration) {
  UpdateQueue queue(10);
  queue.Push(MakeUpdate(1, 5.0));
  queue.Push(MakeUpdate(2, 2.0));
  EXPECT_DOUBLE_EQ(queue.OldestGeneration(), 2.0);
  EXPECT_DOUBLE_EQ(queue.NewestGeneration(), 5.0);
}

TEST(UpdateQueueTest, ClassFilteredPops) {
  UpdateQueue queue(10);
  const ObjectId low{ObjectClass::kLowImportance, 1};
  const ObjectId high{ObjectClass::kHighImportance, 1};
  queue.Push(MakeUpdate(1, 1.0, low));
  queue.Push(MakeUpdate(2, 2.0, high));
  queue.Push(MakeUpdate(3, 3.0, low));
  queue.Push(MakeUpdate(4, 4.0, high));
  EXPECT_EQ(queue.SizeOfClass(ObjectClass::kLowImportance), 2u);
  EXPECT_EQ(queue.SizeOfClass(ObjectClass::kHighImportance), 2u);
  EXPECT_EQ(queue.PopOldestOfClass(ObjectClass::kHighImportance)->id.value(), 2u);
  EXPECT_EQ(queue.PopNewestOfClass(ObjectClass::kHighImportance)->id.value(), 4u);
  EXPECT_FALSE(
      queue.PopOldestOfClass(ObjectClass::kHighImportance).has_value());
  EXPECT_EQ(queue.PopNewestOfClass(ObjectClass::kLowImportance)->id.value(), 3u);
  EXPECT_EQ(queue.size(), 1u);
}

TEST(UpdateQueueDeathTest, InvalidUse) {
  EXPECT_DEATH(UpdateQueue(0), "positive");
  UpdateQueue queue(4);
  EXPECT_DEATH(queue.OldestGeneration(), "empty");
  EXPECT_DEATH(queue.NewestGeneration(), "empty");
  queue.Push(MakeUpdate(1, 1.0));
  EXPECT_DEATH(queue.Push(MakeUpdate(1, 1.0)), "duplicate");
}

// Property test: random pushes/pops/purges/removes agree with a
// reference model, and the per-object index never goes out of sync.
TEST(UpdateQueueTest, RandomOpsAgreeWithReferenceModel) {
  UpdateQueue queue(50);
  sim::RandomStream random(base::RngSeed(11));
  std::map<std::pair<sim::Time, std::uint64_t>, Update> model;
  std::uint64_t next_id = 0;

  auto model_erase_oldest = [&] {
    Update u = model.begin()->second;
    model.erase(model.begin());
    return u;
  };

  for (int step = 0; step < 4000; ++step) {
    const int op = random.UniformInt(0, 4);
    if (op <= 1 || model.empty()) {  // push
      Update u = MakeUpdate(
          ++next_id, random.Uniform(0, 100),
          {random.WithProbability(0.5) ? ObjectClass::kLowImportance
                                       : ObjectClass::kHighImportance,
           random.UniformInt(0, 9)});
      const auto evicted = queue.Push(u);
      model.emplace(std::make_pair(u.generation_time, u.id.value()), u);
      while (model.size() > 50) {
        const Update dropped = model_erase_oldest();
        ASSERT_EQ(evicted.size(), 1u);
        EXPECT_EQ(evicted[0].id, dropped.id);
      }
    } else if (op == 2) {  // pop oldest or newest
      if (random.WithProbability(0.5)) {
        const auto popped = queue.PopOldest();
        ASSERT_TRUE(popped.has_value());
        EXPECT_EQ(popped->id, model.begin()->second.id);
        model.erase(model.begin());
      } else {
        const auto popped = queue.PopNewest();
        ASSERT_TRUE(popped.has_value());
        EXPECT_EQ(popped->id, std::prev(model.end())->second.id);
        model.erase(std::prev(model.end()));
      }
    } else if (op == 3) {  // purge a random cutoff
      const sim::Time cutoff = random.Uniform(0, 100);
      const auto purged = queue.PurgeGeneratedBefore(cutoff);
      std::size_t expected = 0;
      while (!model.empty() && model.begin()->first.first < cutoff) {
        EXPECT_EQ(purged[expected].id, model.begin()->second.id);
        model.erase(model.begin());
        ++expected;
      }
      EXPECT_EQ(purged.size(), expected);
    } else {  // peek-newest-for consistency on a random object
      const ObjectId object{random.WithProbability(0.5)
                                ? ObjectClass::kLowImportance
                                : ObjectClass::kHighImportance,
                            random.UniformInt(0, 9)};
      const auto peeked = queue.PeekNewestFor(object);
      // Reference: newest matching entry in the model.
      const Update* expected = nullptr;
      for (const auto& [key, u] : model) {
        if (u.object == object) expected = &u;
      }
      if (expected == nullptr) {
        EXPECT_FALSE(peeked.has_value());
      } else {
        ASSERT_TRUE(peeked.has_value());
        EXPECT_EQ(peeked->id, expected->id);
      }
    }
    EXPECT_EQ(queue.size(), model.size());
  }
}

}  // namespace
}  // namespace strip::db
