#include "sim/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace strip::sim {
namespace {

TEST(CounterTest, IncrementsAndDefaults) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Increment();
  counter.Increment(4);
  EXPECT_EQ(counter.value(), 5u);
}

TEST(AccumulatorTest, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 0.0);
}

TEST(AccumulatorTest, MeanAndVarianceMatchHandComputation) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.Add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
  // Sample variance with n-1 = 7: sum of squared deviations is 32.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
}

TEST(AccumulatorTest, SingleSampleHasZeroVariance) {
  Accumulator acc;
  acc.Add(3.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(TimeWeightedTest, ConstantSignal) {
  TimeWeighted signal;
  signal.StartAt(0.0, 2.0);
  EXPECT_DOUBLE_EQ(signal.Average(10.0), 2.0);
  EXPECT_DOUBLE_EQ(signal.Integral(10.0), 20.0);
}

TEST(TimeWeightedTest, StepSignal) {
  TimeWeighted signal;
  signal.StartAt(0.0, 0.0);
  signal.Set(4.0, 1.0);  // 0 for [0,4), 1 for [4,10]
  EXPECT_DOUBLE_EQ(signal.Integral(10.0), 6.0);
  EXPECT_DOUBLE_EQ(signal.Average(10.0), 0.6);
}

TEST(TimeWeightedTest, MultipleSteps) {
  TimeWeighted signal;
  signal.StartAt(0.0, 1.0);
  signal.Set(2.0, 3.0);
  signal.Set(5.0, 0.0);
  // 1*2 + 3*3 + 0*5 = 11 over [0,10]
  EXPECT_DOUBLE_EQ(signal.Integral(10.0), 11.0);
  EXPECT_DOUBLE_EQ(signal.Average(10.0), 1.1);
}

TEST(TimeWeightedTest, RepeatedSetAtSameInstant) {
  TimeWeighted signal;
  signal.StartAt(0.0, 1.0);
  signal.Set(5.0, 2.0);
  signal.Set(5.0, 3.0);  // instantaneous double change
  EXPECT_DOUBLE_EQ(signal.Integral(10.0), 1.0 * 5 + 3.0 * 5);
}

TEST(TimeWeightedTest, ValueReflectsLatestSet) {
  TimeWeighted signal;
  signal.StartAt(0.0, 1.0);
  signal.Set(2.0, 7.0);
  EXPECT_DOUBLE_EQ(signal.value(), 7.0);
}

TEST(TimeWeightedTest, StartAtResetsHistory) {
  TimeWeighted signal;
  signal.StartAt(0.0, 100.0);
  signal.Set(5.0, 1.0);
  signal.StartAt(5.0, 1.0);  // observation restarts; history dropped
  EXPECT_DOUBLE_EQ(signal.Average(10.0), 1.0);
}

TEST(TimeWeightedTest, EmptyWindowIsZero) {
  TimeWeighted signal;
  signal.StartAt(3.0, 42.0);
  EXPECT_DOUBLE_EQ(signal.Average(3.0), 0.0);
}

TEST(TimeWeightedDeathTest, BackwardsTimeDies) {
  TimeWeighted signal;
  signal.StartAt(0.0, 0.0);
  signal.Set(5.0, 1.0);
  EXPECT_DEATH(signal.Set(4.0, 2.0), "backwards");
  EXPECT_DEATH(signal.Integral(4.0), "before last change");
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, MeanIsExact) {
  Histogram h(0.0, 10.0, 10);
  for (double x : {1.0, 2.0, 3.0, 6.0}) h.Add(x);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(HistogramTest, QuantilesInterpolateWithinBuckets) {
  Histogram h(0.0, 10.0, 10);
  // 100 samples spread uniformly: quantiles track the sample values
  // to within a bucket width.
  for (int i = 0; i < 100; ++i) h.Add(i / 10.0);
  EXPECT_NEAR(h.Quantile(0.5), 5.0, 1.0);
  EXPECT_NEAR(h.Quantile(0.95), 9.5, 1.0);
  EXPECT_NEAR(h.Quantile(0.0), 0.0, 1.0);
  EXPECT_NEAR(h.Quantile(1.0), 10.0, 1.0);
}

TEST(HistogramTest, QuantileIsMonotone) {
  Histogram h(0.0, 1.0, 50);
  for (int i = 0; i < 500; ++i) h.Add((i % 100) / 100.0);
  double last = 0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double value = h.Quantile(q);
    EXPECT_GE(value, last);
    last = value;
  }
}

TEST(HistogramTest, OverflowAndUnderflowClampAndCount) {
  Histogram h(0.0, 10.0, 10);
  h.Add(-5.0);
  h.Add(50.0);
  h.Add(5.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(), 3u);
  // Quantiles stay within range despite clamped outliers.
  EXPECT_GE(h.Quantile(0.99), 0.0);
  EXPECT_LE(h.Quantile(0.99), 10.0);
}

TEST(HistogramTest, SingleBucket) {
  Histogram h(0.0, 1.0, 1);
  h.Add(0.3);
  h.Add(0.7);
  EXPECT_NEAR(h.Quantile(0.5), 0.5, 0.51);
}

TEST(HistogramDeathTest, InvalidConstructionAndQuantile) {
  EXPECT_DEATH(Histogram(1.0, 1.0, 10), "empty");
  EXPECT_DEATH(Histogram(0.0, 1.0, 0), "bucket");
  Histogram h(0.0, 1.0, 10);
  EXPECT_DEATH(h.Quantile(1.5), "0, 1");
}

TEST(SummaryTest, EmptySamples) {
  const Summary summary = Summary::FromSamples({});
  EXPECT_EQ(summary.samples, 0);
  EXPECT_DOUBLE_EQ(summary.mean, 0.0);
  EXPECT_DOUBLE_EQ(summary.ci95, 0.0);
}

TEST(SummaryTest, SingleSampleHasNoCi) {
  const Summary summary = Summary::FromSamples({5.0});
  EXPECT_EQ(summary.samples, 1);
  EXPECT_DOUBLE_EQ(summary.mean, 5.0);
  EXPECT_DOUBLE_EQ(summary.ci95, 0.0);
}

TEST(SummaryTest, MeanAndCi) {
  const Summary summary = Summary::FromSamples({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(summary.mean, 2.5);
  // sd = sqrt(5/3); ci = 1.96 * sd / 2
  EXPECT_NEAR(summary.ci95, 1.96 * std::sqrt(5.0 / 3.0) / 2.0, 1e-12);
}

TEST(SummaryTest, IdenticalSamplesHaveZeroCi) {
  const Summary summary = Summary::FromSamples({3.0, 3.0, 3.0});
  EXPECT_DOUBLE_EQ(summary.mean, 3.0);
  EXPECT_DOUBLE_EQ(summary.ci95, 0.0);
}

TEST(HistogramMergeTest, MergeMatchesSingleHistogramReference) {
  // Two shards' histograms merged must equal one histogram fed both
  // sample streams -- exact bucket counts, not an approximation.
  Histogram a(0.0, 10.0, 50);
  Histogram b(0.0, 10.0, 50);
  Histogram reference(0.0, 10.0, 50);
  for (int i = 0; i < 1000; ++i) {
    const double low = 0.01 * static_cast<double>(i);
    const double high = 10.0 - 0.009 * static_cast<double>(i);
    a.Add(low);
    b.Add(high);
    reference.Add(low);
    reference.Add(high);
  }
  // Out-of-range traffic must merge too.
  a.Add(-1.0);
  b.Add(42.0);
  reference.Add(-1.0);
  reference.Add(42.0);

  ASSERT_TRUE(a.Merge(b));
  EXPECT_EQ(a.count(), reference.count());
  EXPECT_EQ(a.underflow(), reference.underflow());
  EXPECT_EQ(a.overflow(), reference.overflow());
  EXPECT_DOUBLE_EQ(a.mean(), reference.mean());
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(a.Quantile(q), reference.Quantile(q)) << "q=" << q;
  }
}

TEST(HistogramMergeTest, MergeEmptyIsNoOp) {
  Histogram a(0.0, 10.0, 50);
  a.Add(1.0);
  Histogram empty(0.0, 10.0, 50);
  ASSERT_TRUE(a.Merge(empty));
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.0);
}

TEST(HistogramMergeTest, LayoutMismatchRefusesAndLeavesUnchanged) {
  Histogram a(0.0, 10.0, 50);
  a.Add(1.0);
  Histogram wider(0.0, 20.0, 50);
  wider.Add(5.0);
  Histogram coarser(0.0, 10.0, 25);
  coarser.Add(5.0);
  EXPECT_FALSE(a.Merge(wider));
  EXPECT_FALSE(a.Merge(coarser));
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.Quantile(1.0), a.Quantile(1.0));
}

}  // namespace
}  // namespace strip::sim
