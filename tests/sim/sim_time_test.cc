#include "sim/sim_time.h"

#include <gtest/gtest.h>

namespace strip::sim {
namespace {

TEST(SimTimeTest, InstructionConversionAtPaperSpeed) {
  // 24000 instructions at 50 MIPS = 480 microseconds.
  EXPECT_DOUBLE_EQ(InstructionsToSeconds(24000, 50e6), 0.00048);
}

TEST(SimTimeTest, ZeroInstructionsIsZeroTime) {
  EXPECT_DOUBLE_EQ(InstructionsToSeconds(0, 50e6), 0.0);
}

TEST(SimTimeTest, ConversionIsLinear) {
  const double one = InstructionsToSeconds(1000, 50e6);
  EXPECT_DOUBLE_EQ(InstructionsToSeconds(5000, 50e6), 5 * one);
}

TEST(SimTimeTest, ConversionIsConstexpr) {
  static_assert(InstructionsToSeconds(50e6, 50e6) == 1.0);
  SUCCEED();
}

TEST(SimTimeTest, InfinitySentinelIsFarFuture) {
  EXPECT_GT(kTimeInfinity, 1e100);
}

}  // namespace
}  // namespace strip::sim
