#include "sim/event_queue.h"

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "sim/random.h"

namespace strip::sim {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_FALSE(queue.PopNext().has_value());
  EXPECT_FALSE(queue.PeekNextTime().has_value());
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.Schedule(3.0, [&] { order.push_back(3); });
  queue.Schedule(1.0, [&] { order.push_back(1); });
  queue.Schedule(2.0, [&] { order.push_back(2); });
  while (auto event = queue.PopNext()) event->callback();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimesFireInScheduleOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.Schedule(5.0, [&order, i] { order.push_back(i); });
  }
  while (auto event = queue.PopNext()) event->callback();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, PopReturnsTime) {
  EventQueue queue;
  queue.Schedule(7.25, [] {});
  auto event = queue.PopNext();
  ASSERT_TRUE(event.has_value());
  EXPECT_DOUBLE_EQ(event->time, 7.25);
}

TEST(EventQueueTest, PeekDoesNotRemove) {
  EventQueue queue;
  queue.Schedule(2.0, [] {});
  EXPECT_EQ(queue.PeekNextTime(), std::optional<Time>(2.0));
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_TRUE(queue.PopNext().has_value());
  EXPECT_EQ(queue.size(), 0u);
}

TEST(EventQueueTest, CancelPreventsFiring) {
  EventQueue queue;
  bool fired = false;
  auto handle = queue.Schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(queue.Cancel(handle));
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.PopNext().has_value());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelTwiceReturnsFalse) {
  EventQueue queue;
  auto handle = queue.Schedule(1.0, [] {});
  EXPECT_TRUE(queue.Cancel(handle));
  EXPECT_FALSE(queue.Cancel(handle));
}

TEST(EventQueueTest, CancelAfterFireReturnsFalse) {
  EventQueue queue;
  auto handle = queue.Schedule(1.0, [] {});
  ASSERT_TRUE(queue.PopNext().has_value());
  EXPECT_FALSE(queue.Cancel(handle));
}

TEST(EventQueueTest, DefaultHandleIsNotPending) {
  EventQueue::Handle handle;
  EXPECT_FALSE(handle.pending());
  EventQueue queue;
  EXPECT_FALSE(queue.Cancel(handle));
}

TEST(EventQueueTest, HandlePendingTracksLifecycle) {
  EventQueue queue;
  auto handle = queue.Schedule(1.0, [] {});
  EXPECT_TRUE(handle.pending());
  queue.Cancel(handle);
  EXPECT_FALSE(handle.pending());

  auto handle2 = queue.Schedule(2.0, [] {});
  EXPECT_TRUE(handle2.pending());
  queue.PopNext();
  EXPECT_FALSE(handle2.pending());
}

TEST(EventQueueTest, CancelledEventSkippedAmongOthers) {
  EventQueue queue;
  std::vector<int> order;
  queue.Schedule(1.0, [&] { order.push_back(1); });
  auto handle = queue.Schedule(2.0, [&] { order.push_back(2); });
  queue.Schedule(3.0, [&] { order.push_back(3); });
  queue.Cancel(handle);
  EXPECT_EQ(queue.size(), 2u);
  while (auto event = queue.PopNext()) event->callback();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, PeekSkipsCancelledFront) {
  EventQueue queue;
  auto handle = queue.Schedule(1.0, [] {});
  queue.Schedule(2.0, [] {});
  queue.Cancel(handle);
  EXPECT_EQ(queue.PeekNextTime(), std::optional<Time>(2.0));
}

TEST(EventQueueTest, SizeCountsOnlyLiveEvents) {
  EventQueue queue;
  auto a = queue.Schedule(1.0, [] {});
  queue.Schedule(2.0, [] {});
  EXPECT_EQ(queue.size(), 2u);
  queue.Cancel(a);
  EXPECT_EQ(queue.size(), 1u);
}

TEST(EventQueueTest, ZeroTimeEventAllowed) {
  EventQueue queue;
  bool fired = false;
  queue.Schedule(0.0, [&] { fired = true; });
  auto event = queue.PopNext();
  ASSERT_TRUE(event.has_value());
  event->callback();
  EXPECT_TRUE(fired);
}

TEST(EventQueueDeathTest, NegativeTimeRejected) {
  EventQueue queue;
  EXPECT_DEATH(queue.Schedule(-1.0, [] {}), "negative time");
}

TEST(EventQueueDeathTest, NullCallbackRejected) {
  EventQueue queue;
  EXPECT_DEATH(queue.Schedule(1.0, nullptr), "null callback");
}

// Property test: a random mix of schedule / cancel / pop operations
// must agree with a reference model (a multimap ordered by (time,
// sequence)).
TEST(EventQueueTest, RandomOpsAgreeWithReferenceModel) {
  EventQueue queue;
  RandomStream random(base::RngSeed(2024));
  struct Ref {
    double time;
    std::uint64_t seq;
    bool live = true;
  };
  std::vector<Ref> refs;
  std::vector<EventQueue::Handle> handles;
  std::uint64_t seq = 0;
  std::size_t live = 0;

  for (int step = 0; step < 5000; ++step) {
    const int op = random.UniformInt(0, 2);
    if (op == 0 || live == 0) {  // schedule
      const double t = random.Uniform(0, 100);
      handles.push_back(queue.Schedule(t, [] {}));
      refs.push_back({t, seq++, true});
      ++live;
    } else if (op == 1) {  // cancel a random (possibly dead) handle
      const int i = random.UniformInt(0, static_cast<int>(refs.size()) - 1);
      const bool expect = refs[i].live;
      EXPECT_EQ(queue.Cancel(handles[i]), expect);
      if (refs[i].live) {
        refs[i].live = false;
        --live;
      }
    } else {  // pop: must match the earliest live (time, seq)
      auto event = queue.PopNext();
      ASSERT_TRUE(event.has_value());
      std::size_t best = refs.size();
      for (std::size_t i = 0; i < refs.size(); ++i) {
        if (!refs[i].live) continue;
        if (best == refs.size() || refs[i].time < refs[best].time ||
            (refs[i].time == refs[best].time &&
             refs[i].seq < refs[best].seq)) {
          best = i;
        }
      }
      ASSERT_NE(best, refs.size());
      EXPECT_DOUBLE_EQ(event->time, refs[best].time);
      refs[best].live = false;
      --live;
    }
    EXPECT_EQ(queue.size(), live);
  }
}

}  // namespace
}  // namespace strip::sim
