#include "sim/simulator.h"

#include <vector>

#include <gtest/gtest.h>

namespace strip::sim {
namespace {

TEST(SimulatorTest, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(SimulatorTest, RunUntilAdvancesClockToEnd) {
  Simulator sim;
  sim.RunUntil(10.0);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(SimulatorTest, EventSeesItsOwnTimestamp) {
  Simulator sim;
  double seen = -1;
  sim.ScheduleAt(3.5, [&] { seen = sim.now(); });
  sim.RunUntil(10.0);
  EXPECT_DOUBLE_EQ(seen, 3.5);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(SimulatorTest, ScheduleAfterIsRelative) {
  Simulator sim;
  double seen = -1;
  sim.ScheduleAt(2.0, [&] {
    sim.ScheduleAfter(1.5, [&] { seen = sim.now(); });
  });
  sim.RunUntil(10.0);
  EXPECT_DOUBLE_EQ(seen, 3.5);
}

TEST(SimulatorTest, EventsBeyondEndAreNotDispatched) {
  Simulator sim;
  bool fired = false;
  sim.ScheduleAt(11.0, [&] { fired = true; });
  sim.RunUntil(10.0);
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_pending(), 1u);
}

TEST(SimulatorTest, EventExactlyAtEndIsDispatched) {
  Simulator sim;
  bool fired = false;
  sim.ScheduleAt(10.0, [&] { fired = true; });
  sim.RunUntil(10.0);
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, RunUntilCanBeResumed) {
  Simulator sim;
  std::vector<double> fires;
  sim.ScheduleAt(5.0, [&] { fires.push_back(sim.now()); });
  sim.ScheduleAt(15.0, [&] { fires.push_back(sim.now()); });
  sim.RunUntil(10.0);
  EXPECT_EQ(fires.size(), 1u);
  sim.RunUntil(20.0);
  ASSERT_EQ(fires.size(), 2u);
  EXPECT_DOUBLE_EQ(fires[1], 15.0);
}

TEST(SimulatorTest, StopHaltsDispatchMidRun) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(1.0, [&] {
    ++fired;
    sim.Stop();
  });
  sim.ScheduleAt(2.0, [&] { ++fired; });
  sim.RunUntil(10.0);
  EXPECT_EQ(fired, 1);
  // Clock stays at the stopping event's time.
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
  EXPECT_EQ(sim.events_pending(), 1u);
}

TEST(SimulatorTest, RunDrainsEverything) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(1.0, [&] { ++fired; });
  sim.ScheduleAt(100.0, [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(SimulatorTest, CountsDispatchedEvents) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.ScheduleAt(i, [] {});
  auto handle = sim.ScheduleAt(2.5, [] {});
  sim.Cancel(handle);
  sim.RunUntil(10.0);
  EXPECT_EQ(sim.events_dispatched(), 5u);
}

TEST(SimulatorTest, SelfReschedulingStreamRespectsEnd) {
  Simulator sim;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    sim.ScheduleAfter(1.0, tick);
  };
  sim.ScheduleAt(1.0, tick);
  sim.RunUntil(10.0);
  // Fires at t = 1..10 inclusive.
  EXPECT_EQ(count, 10);
}

TEST(SimulatorTest, CancelInsideEvent) {
  Simulator sim;
  bool fired = false;
  EventQueue::Handle victim = sim.ScheduleAt(5.0, [&] { fired = true; });
  sim.ScheduleAt(1.0, [&] { EXPECT_TRUE(sim.Cancel(victim)); });
  sim.RunUntil(10.0);
  EXPECT_FALSE(fired);
}

TEST(SimulatorDeathTest, SchedulingInThePastDies) {
  Simulator sim;
  sim.RunUntil(5.0);
  EXPECT_DEATH(sim.ScheduleAt(4.0, [] {}), "past");
}

TEST(SimulatorDeathTest, NegativeDelayDies) {
  Simulator sim;
  EXPECT_DEATH(sim.ScheduleAfter(-0.5, [] {}), "negative delay");
}

TEST(SimulatorDeathTest, RunUntilBackwardsDies) {
  Simulator sim;
  sim.RunUntil(5.0);
  EXPECT_DEATH(sim.RunUntil(4.0), "past");
}

}  // namespace
}  // namespace strip::sim
