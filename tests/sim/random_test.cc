#include "sim/random.h"

#include <cmath>

#include <gtest/gtest.h>

#include "sim/stats.h"

namespace strip::sim {
namespace {

TEST(RandomStreamTest, SameSeedSameSequence) {
  RandomStream a(base::RngSeed(99));
  RandomStream b(base::RngSeed(99));
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(0, 1), b.Uniform(0, 1));
  }
}

TEST(RandomStreamTest, DifferentSeedsDiffer) {
  RandomStream a(base::RngSeed(1));
  RandomStream b(base::RngSeed(2));
  bool any_different = false;
  for (int i = 0; i < 10; ++i) {
    if (a.Uniform(0, 1) != b.Uniform(0, 1)) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(RandomStreamTest, ExponentialMeanIsClose) {
  RandomStream random(base::RngSeed(7));
  Accumulator acc;
  for (int i = 0; i < 100000; ++i) acc.Add(random.Exponential(0.1));
  EXPECT_NEAR(acc.mean(), 0.1, 0.002);
}

TEST(RandomStreamTest, ExponentialIsPositive) {
  RandomStream random(base::RngSeed(7));
  for (int i = 0; i < 1000; ++i) EXPECT_GE(random.Exponential(2.0), 0.0);
}

TEST(RandomStreamTest, PoissonInterarrivalMatchesRate) {
  RandomStream random(base::RngSeed(7));
  Accumulator acc;
  for (int i = 0; i < 100000; ++i) acc.Add(random.PoissonInterarrival(400));
  EXPECT_NEAR(acc.mean(), 1.0 / 400, 1.0 / 400 * 0.05);
}

TEST(RandomStreamTest, NormalMeanAndSd) {
  RandomStream random(base::RngSeed(7));
  Accumulator acc;
  for (int i = 0; i < 100000; ++i) acc.Add(random.Normal(0.12, 0.01));
  EXPECT_NEAR(acc.mean(), 0.12, 0.001);
  EXPECT_NEAR(acc.stddev(), 0.01, 0.001);
}

TEST(RandomStreamTest, NormalZeroSdIsDeterministic) {
  RandomStream random(base::RngSeed(7));
  EXPECT_DOUBLE_EQ(random.Normal(5.0, 0.0), 5.0);
}

TEST(RandomStreamTest, NormalAtLeastClampsFloor) {
  RandomStream random(base::RngSeed(7));
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(random.NormalAtLeast(0.0, 1.0, 0.0), 0.0);
  }
}

TEST(RandomStreamTest, UniformStaysInRange) {
  RandomStream random(base::RngSeed(7));
  for (int i = 0; i < 10000; ++i) {
    const double x = random.Uniform(0.1, 1.0);
    EXPECT_GE(x, 0.1);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RandomStreamTest, UniformMean) {
  RandomStream random(base::RngSeed(7));
  Accumulator acc;
  for (int i = 0; i < 100000; ++i) acc.Add(random.Uniform(0.1, 1.0));
  EXPECT_NEAR(acc.mean(), 0.55, 0.01);
}

TEST(RandomStreamTest, UniformIntCoversRangeInclusive) {
  RandomStream random(base::RngSeed(7));
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int x = random.UniformInt(0, 4);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 4);
    if (x == 0) saw_lo = true;
    if (x == 4) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomStreamTest, UniformIntSingleton) {
  RandomStream random(base::RngSeed(7));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(random.UniformInt(3, 3), 3);
}

TEST(RandomStreamTest, WithProbabilityExtremes) {
  RandomStream random(base::RngSeed(7));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(random.WithProbability(0.0));
    EXPECT_TRUE(random.WithProbability(1.0));
  }
}

TEST(RandomStreamTest, WithProbabilityFrequency) {
  RandomStream random(base::RngSeed(7));
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (random.WithProbability(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RandomStreamTest, ForkedSeedsAreDistinct) {
  RandomStream random(base::RngSeed(7));
  const base::RngSeed a = random.Fork();
  const base::RngSeed b = random.Fork();
  EXPECT_NE(a, b);
  // Children produce different streams.
  RandomStream child_a(a);
  RandomStream child_b(b);
  bool any_different = false;
  for (int i = 0; i < 10; ++i) {
    if (child_a.Uniform(0, 1) != child_b.Uniform(0, 1)) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(RandomStreamTest, ForkIsDeterministic) {
  RandomStream a(base::RngSeed(7));
  RandomStream b(base::RngSeed(7));
  EXPECT_EQ(a.Fork(), b.Fork());
}

TEST(RandomStreamDeathTest, BadArgumentsDie) {
  RandomStream random(base::RngSeed(7));
  EXPECT_DEATH(random.Exponential(0.0), "positive");
  EXPECT_DEATH(random.Normal(0, -1), "non-negative");
  EXPECT_DEATH(random.Uniform(2, 1), "out of order");
  EXPECT_DEATH(random.UniformInt(2, 1), "out of order");
  EXPECT_DEATH(random.WithProbability(1.5), "0, 1");
}

}  // namespace
}  // namespace strip::sim
