// Randomized churn: the pooled EventQueue against a naive reference
// model (a stable-sorted vector of live events). Hundreds of thousands
// of mixed schedule/cancel/pop operations, with deliberately coarse
// time quantization so same-instant FIFO ties happen constantly, plus
// stale-handle traffic (cancel after fire, double cancel) and captures
// larger than the inline-storage budget to exercise the heap fallback.

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.h"

namespace strip::sim {
namespace {

// The naive model: every live event in a vector, popped by linear
// stable min-scan — trivially correct FIFO-among-ties semantics.
class ReferenceQueue {
 public:
  std::uint64_t Schedule(Time at) {
    events_.push_back({at, next_id_});
    return next_id_++;
  }

  bool Cancel(std::uint64_t id) {
    for (std::size_t i = 0; i < events_.size(); ++i) {
      if (events_[i].id == id) {
        events_.erase(events_.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  }

  bool Pending(std::uint64_t id) const {
    for (const Event& event : events_) {
      if (event.id == id) return true;
    }
    return false;
  }

  // Earliest time, oldest id among ties.
  std::optional<std::pair<Time, std::uint64_t>> Pop() {
    if (events_.empty()) return std::nullopt;
    std::size_t best = 0;
    for (std::size_t i = 1; i < events_.size(); ++i) {
      if (events_[i].time < events_[best].time ||
          (events_[i].time == events_[best].time &&
           events_[i].id < events_[best].id)) {
        best = i;
      }
    }
    const Event event = events_[best];
    events_.erase(events_.begin() + static_cast<std::ptrdiff_t>(best));
    return std::make_pair(event.time, event.id);
  }

  std::size_t size() const { return events_.size(); }

 private:
  struct Event {
    Time time;
    std::uint64_t id;
  };
  std::vector<Event> events_;
  std::uint64_t next_id_ = 0;
};

struct LiveEvent {
  EventQueue::Handle handle;
  std::uint64_t id = 0;
};

TEST(EventQueueChurnTest, MatchesReferenceOverRandomizedChurn) {
  EventQueue queue;
  ReferenceQueue reference;
  std::mt19937_64 rng(20260806);

  // Each fired callback records its reference id here.
  std::uint64_t fired_id = 0;
  std::vector<LiveEvent> live;
  std::vector<EventQueue::Handle> dead;  // fired or cancelled handles
  Time now = 0;

  constexpr int kOps = 150000;
  for (int op = 0; op < kOps; ++op) {
    const int roll = static_cast<int>(rng() % 100);
    if (roll < 45 || live.empty()) {
      // Schedule. Quantized offsets make same-instant ties common.
      const Time at =
          now + static_cast<double>(rng() % 64) * 0.25;
      const std::uint64_t id = reference.Schedule(at);
      live.push_back({queue.Schedule(at, [&fired_id, id] { fired_id = id; }),
                      id});
    } else if (roll < 65) {
      // Cancel a random live event.
      const std::size_t pick = rng() % live.size();
      EXPECT_TRUE(queue.Cancel(live[pick].handle));
      EXPECT_TRUE(reference.Cancel(live[pick].id));
      dead.push_back(live[pick].handle);
      live[pick] = live.back();
      live.pop_back();
    } else if (roll < 90) {
      // Pop and fire; both queues must agree on time and identity.
      auto fired = queue.PopNext();
      auto expected = reference.Pop();
      ASSERT_EQ(fired.has_value(), expected.has_value());
      if (fired.has_value()) {
        EXPECT_EQ(fired->time, expected->first);
        ASSERT_GE(fired->time, now);
        now = fired->time;
        fired->callback();
        EXPECT_EQ(fired_id, expected->second);
        const auto it = std::find_if(
            live.begin(), live.end(),
            [&](const LiveEvent& e) { return e.id == expected->second; });
        ASSERT_NE(it, live.end());
        EXPECT_FALSE(it->handle.pending());
        dead.push_back(it->handle);
        *it = live.back();
        live.pop_back();
      }
    } else if (!dead.empty()) {
      // Cancel-after-fire / double-cancel must be a harmless no-op.
      const std::size_t before = queue.size();
      EXPECT_FALSE(queue.Cancel(dead[rng() % dead.size()]));
      EXPECT_EQ(queue.size(), before);
      if (dead.size() > 4096) dead.clear();
    }

    ASSERT_EQ(queue.size(), reference.size());
    if (op % 1024 == 0) {
      EXPECT_EQ(queue.empty(), reference.size() == 0);
      if (auto next = queue.PeekNextTime()) {
        auto expected = reference.Pop();  // peek by pop + re-add
        ASSERT_TRUE(expected.has_value());
        EXPECT_EQ(*next, expected->first);
        // Re-add is not possible without disturbing ids, so verify via
        // a fresh pop from both instead.
        auto fired = queue.PopNext();
        ASSERT_TRUE(fired.has_value());
        EXPECT_EQ(fired->time, expected->first);
        now = fired->time;
        fired->callback();
        EXPECT_EQ(fired_id, expected->second);
        const auto it = std::find_if(
            live.begin(), live.end(),
            [&](const LiveEvent& e) { return e.id == expected->second; });
        ASSERT_NE(it, live.end());
        *it = live.back();
        live.pop_back();
      }
    }
  }

  // Drain both; every remaining event must match in order.
  while (auto fired = queue.PopNext()) {
    auto expected = reference.Pop();
    ASSERT_TRUE(expected.has_value());
    EXPECT_EQ(fired->time, expected->first);
    fired->callback();
    EXPECT_EQ(fired_id, expected->second);
  }
  EXPECT_EQ(reference.Pop(), std::nullopt);
  EXPECT_TRUE(queue.empty());
}

// All events at one instant: pure FIFO, under heavy interleaved
// cancellation.
TEST(EventQueueChurnTest, SameInstantFifoUnderCancellation) {
  EventQueue queue;
  std::mt19937_64 rng(7);
  std::vector<std::pair<EventQueue::Handle, int>> scheduled;
  std::uint64_t fired = 0;
  for (int i = 0; i < 50000; ++i) {
    int captured = i;
    scheduled.emplace_back(
        queue.Schedule(1.0, [&fired, captured] { fired = captured; }),
        i);
  }
  std::vector<int> expected;
  for (auto& [handle, index] : scheduled) {
    if (rng() % 3 == 0) {
      EXPECT_TRUE(queue.Cancel(handle));
    } else {
      expected.push_back(index);
    }
  }
  for (int index : expected) {
    auto event = queue.PopNext();
    ASSERT_TRUE(event.has_value());
    EXPECT_EQ(event->time, 1.0);
    event->callback();
    EXPECT_EQ(fired, static_cast<std::uint64_t>(index));
  }
  EXPECT_FALSE(queue.PopNext().has_value());
}

// Captures bigger than the inline budget take the heap-allocated
// fallback path; the queue must still order, fire, and cancel them
// correctly (and destroy them exactly once — ASan watches).
TEST(EventQueueChurnTest, OversizedCapturesUseHeapFallbackCorrectly) {
  EventQueue queue;
  std::mt19937_64 rng(11);
  std::uint64_t sum = 0;
  std::uint64_t expected_sum = 0;
  std::vector<EventQueue::Handle> handles;
  for (int i = 0; i < 20000; ++i) {
    std::array<std::uint64_t, 16> payload{};  // 128 bytes: never inline
    payload.fill(static_cast<std::uint64_t>(i));
    handles.push_back(queue.Schedule(
        static_cast<double>(rng() % 100),
        [&sum, payload] { sum += payload[0] + payload[15]; }));
  }
  for (std::size_t i = 0; i < handles.size(); ++i) {
    if (i % 4 == 0) {
      EXPECT_TRUE(queue.Cancel(handles[i]));
    } else {
      expected_sum += 2 * static_cast<std::uint64_t>(i);
    }
  }
  while (auto event = queue.PopNext()) event->callback();
  EXPECT_EQ(sum, expected_sum);
}

}  // namespace
}  // namespace strip::sim
