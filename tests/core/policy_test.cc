#include "core/policy.h"

#include <gtest/gtest.h>

#include "core/policy_fcf.h"
#include "core/policy_od.h"
#include "core/policy_su.h"
#include "core/policy_tf.h"
#include "core/policy_uf.h"

namespace strip::core {
namespace {

db::Update LowUpdate() {
  db::Update u;
  u.object = {db::ObjectClass::kLowImportance, 3};
  return u;
}

db::Update HighUpdate() {
  db::Update u;
  u.object = {db::ObjectClass::kHighImportance, 3};
  return u;
}

TEST(PolicyFactoryTest, CreatesEveryKind) {
  for (PolicyKind kind :
       {PolicyKind::kUpdateFirst, PolicyKind::kTransactionFirst,
        PolicyKind::kSplitUpdates, PolicyKind::kOnDemand,
        PolicyKind::kFixedFraction}) {
    Config config;
    config.policy = kind;
    auto policy = MakePolicy(config);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->kind(), kind);
    EXPECT_STREQ(policy->name(), PolicyKindName(kind));
  }
}

TEST(UpdateFirstPolicyTest, DecisionTable) {
  UpdateFirstPolicy policy;
  EXPECT_TRUE(policy.InstallOnArrival(LowUpdate()));
  EXPECT_TRUE(policy.InstallOnArrival(HighUpdate()));
  EXPECT_FALSE(policy.AppliesOnDemand());
  EXPECT_FALSE(policy.UsesUpdateQueue());
  UpdaterContext context;
  context.os_pending = 0;
  EXPECT_FALSE(policy.UpdaterHasPriority(context));
  context.os_pending = 1;
  EXPECT_TRUE(policy.UpdaterHasPriority(context));
}

TEST(TransactionFirstPolicyTest, DecisionTable) {
  TransactionFirstPolicy policy;
  EXPECT_FALSE(policy.InstallOnArrival(LowUpdate()));
  EXPECT_FALSE(policy.InstallOnArrival(HighUpdate()));
  EXPECT_FALSE(policy.AppliesOnDemand());
  EXPECT_TRUE(policy.UsesUpdateQueue());
  UpdaterContext context;
  context.os_pending = 100;
  context.uq_pending = 100;
  EXPECT_FALSE(policy.UpdaterHasPriority(context));
}

TEST(SplitUpdatesPolicyTest, DecisionTable) {
  SplitUpdatesPolicy policy;
  EXPECT_FALSE(policy.InstallOnArrival(LowUpdate()));
  EXPECT_TRUE(policy.InstallOnArrival(HighUpdate()));
  EXPECT_FALSE(policy.AppliesOnDemand());
  EXPECT_TRUE(policy.UsesUpdateQueue());
  UpdaterContext context;
  context.uq_pending = 50;
  EXPECT_FALSE(policy.UpdaterHasPriority(context));
}

TEST(OnDemandPolicyTest, DecisionTable) {
  OnDemandPolicy policy;
  EXPECT_FALSE(policy.InstallOnArrival(LowUpdate()));
  EXPECT_FALSE(policy.InstallOnArrival(HighUpdate()));
  EXPECT_TRUE(policy.AppliesOnDemand());
  EXPECT_TRUE(policy.UsesUpdateQueue());
  UpdaterContext context;
  context.uq_pending = 50;
  EXPECT_FALSE(policy.UpdaterHasPriority(context));
}

TEST(FixedFractionPolicyTest, GrantsPriorityBelowShare) {
  FixedFractionPolicy policy(0.2);
  EXPECT_DOUBLE_EQ(policy.fraction(), 0.2);
  UpdaterContext context;
  context.now = 100;
  context.observation_start = 0;
  context.uq_pending = 5;
  context.updater_cpu_seconds = 10;  // 10% < 20% share
  EXPECT_TRUE(policy.UpdaterHasPriority(context));
  context.updater_cpu_seconds = 30;  // 30% > 20% share
  EXPECT_FALSE(policy.UpdaterHasPriority(context));
}

TEST(FixedFractionPolicyTest, NoPriorityWithoutWork) {
  FixedFractionPolicy policy(0.5);
  UpdaterContext context;
  context.now = 100;
  context.updater_cpu_seconds = 0;
  context.os_pending = 0;
  context.uq_pending = 0;
  EXPECT_FALSE(policy.UpdaterHasPriority(context));
}

TEST(FixedFractionPolicyTest, ObservationStartShiftsShare) {
  FixedFractionPolicy policy(0.2);
  UpdaterContext context;
  context.now = 150;
  context.observation_start = 100;  // only 50 s observed
  context.uq_pending = 1;
  context.updater_cpu_seconds = 9;  // 18% of 50 s
  EXPECT_TRUE(policy.UpdaterHasPriority(context));
  context.updater_cpu_seconds = 11;  // 22%
  EXPECT_FALSE(policy.UpdaterHasPriority(context));
}

TEST(FixedFractionPolicyTest, RestOfDecisionTable) {
  FixedFractionPolicy policy(0.2);
  EXPECT_FALSE(policy.InstallOnArrival(HighUpdate()));
  EXPECT_FALSE(policy.AppliesOnDemand());
  EXPECT_TRUE(policy.UsesUpdateQueue());
}

}  // namespace
}  // namespace strip::core
