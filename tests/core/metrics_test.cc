#include "core/metrics.h"

#include <gtest/gtest.h>

namespace strip::core {
namespace {

TEST(RunMetricsTest, ZeroedMetricsHaveSafeDerivations) {
  const RunMetrics m;
  EXPECT_EQ(m.txns_terminal(), 0u);
  EXPECT_DOUBLE_EQ(m.p_md(), 0.0);
  EXPECT_DOUBLE_EQ(m.p_success(), 0.0);
  EXPECT_DOUBLE_EQ(m.p_suc_nontardy(), 0.0);
  EXPECT_DOUBLE_EQ(m.av(), 0.0);
  EXPECT_DOUBLE_EQ(m.rho_t(), 0.0);
  EXPECT_DOUBLE_EQ(m.rho_u(), 0.0);
}

RunMetrics Sample() {
  RunMetrics m;
  m.observed_seconds = 100;
  m.txns_arrived = 1000;
  m.txns_committed = 700;
  m.txns_committed_fresh = 560;
  m.txns_committed_stale = 140;
  m.txns_missed_deadline = 200;
  m.txns_infeasible = 60;
  m.txns_stale_aborted = 40;
  m.value_committed = 1200;
  m.cpu_txn_seconds = 80;
  m.cpu_update_seconds = 15;
  return m;
}

TEST(RunMetricsTest, TerminalCount) {
  EXPECT_EQ(Sample().txns_terminal(), 1000u);
}

TEST(RunMetricsTest, PMdCountsEveryNonCommit) {
  // 300 of 1000 did not complete by their deadline.
  EXPECT_DOUBLE_EQ(Sample().p_md(), 0.3);
}

TEST(RunMetricsTest, PSuccess) {
  EXPECT_DOUBLE_EQ(Sample().p_success(), 0.56);
}

TEST(RunMetricsTest, PSucNontardy) {
  EXPECT_DOUBLE_EQ(Sample().p_suc_nontardy(), 0.8);
}

TEST(RunMetricsTest, AvIsValuePerSecond) {
  EXPECT_DOUBLE_EQ(Sample().av(), 12.0);
}

TEST(RunMetricsTest, RhoFractions) {
  const RunMetrics m = Sample();
  EXPECT_DOUBLE_EQ(m.rho_t(), 0.8);
  EXPECT_DOUBLE_EQ(m.rho_u(), 0.15);
  EXPECT_DOUBLE_EQ(m.rho_total(), 0.95);
}

TEST(RunMetricsTest, OverloadDropsCountAgainstPmd) {
  RunMetrics m = Sample();
  m.txns_overload_dropped = 100;
  EXPECT_EQ(m.txns_terminal(), 1100u);
  EXPECT_NEAR(m.p_md(), 400.0 / 1100.0, 1e-12);
  // p_success shrinks too: drops are failures.
  EXPECT_NEAR(m.p_success(), 560.0 / 1100.0, 1e-12);
}

TEST(RunMetricsTest, PerClassFieldsDefaultToZero) {
  const RunMetrics m;
  EXPECT_EQ(m.txns_arrived_by_class[0], 0u);
  EXPECT_EQ(m.txns_committed_by_class[1], 0u);
  EXPECT_DOUBLE_EQ(m.value_committed_by_class[0], 0.0);
}

TEST(RunMetricsTest, ToStringMentionsKeyNumbers) {
  const std::string s = Sample().ToString();
  EXPECT_NE(s.find("p_MD=0.300"), std::string::npos);
  EXPECT_NE(s.find("p_success=0.560"), std::string::npos);
  EXPECT_NE(s.find("AV=12.00"), std::string::npos);
  EXPECT_NE(s.find("rho_t=0.800"), std::string::npos);
  EXPECT_NE(s.find("committed=700"), std::string::npos);
}

}  // namespace
}  // namespace strip::core
