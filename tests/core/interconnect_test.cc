// The interconnect fault domain end to end: delayed links, lost
// messages, partitions, and the remote-read timeout/retry/fallback
// machinery, pinned with deterministic external-workload scenarios.
//
// All scenarios run the full audit stack (per-shard InvariantAuditor
// conservation plus the cross-shard ClusterAuditor census), so every
// remote read must resolve exactly once even while the fabric is
// eating messages.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "check/cluster_auditor.h"
#include "check/invariant_auditor.h"
#include "core/cluster.h"
#include "core/config.h"
#include "sim/simulator.h"

namespace strip::core {
namespace {

txn::Transaction::Params SimpleTxn(std::uint64_t id, sim::Time arrival,
                                   double comp_instructions,
                                   sim::Time deadline,
                                   std::vector<db::ObjectId> reads) {
  txn::Transaction::Params p;
  p.id = base::TxnId(id);
  p.cls = txn::TxnClass::kHighValue;
  p.value = 2.0;
  p.arrival_time = arrival;
  p.deadline = deadline;
  p.computation_instructions = comp_instructions;
  p.lookup_instructions = 4000;
  p.read_set = std::move(reads);
  return p;
}

ShardedConfig ExternalCluster(int shards) {
  ShardedConfig sharded;
  sharded.base.external_workload = true;
  sharded.base.sim_seconds = 10.0;
  sharded.shards = shards;
  return sharded;
}

// A transaction homed on shard 0 whose second read lives on shard 1,
// so it parks on exactly one cross-shard rendezvous.
txn::Transaction::Params CrossShardTxn(sim::Time arrival,
                                       sim::Time deadline) {
  return SimpleTxn(1, arrival, 4'000, deadline,
                   {{db::ObjectClass::kLowImportance, 0},
                    {db::ObjectClass::kLowImportance, 1}});
}

struct AuditStack {
  explicit AuditStack(Cluster& cluster) {
    for (int s = 0; s < cluster.shards(); ++s) {
      auto auditor = std::make_unique<check::InvariantAuditor>();
      auditor->set_system(&cluster.shard(s));
      cluster.shard(s).AddObserver(auditor.get());
      per_shard.push_back(std::move(auditor));
    }
    census.set_cluster(&cluster);
    cluster.AddObserverToAllShards(&census);
  }

  void ExpectClean() {
    for (std::size_t s = 0; s < per_shard.size(); ++s) {
      EXPECT_TRUE(per_shard[s]->ok())
          << "shard " << s << ":\n" << per_shard[s]->Report();
    }
    census.FinishRun();
    EXPECT_TRUE(census.ok()) << census.Report();
  }

  std::vector<std::unique_ptr<check::InvariantAuditor>> per_shard;
  check::ClusterAuditor census;
};

TEST(InterconnectTest, LinkLatencyDelaysTheRendezvous) {
  ShardedConfig config = ExternalCluster(2);
  config.link_latency_us = 1000.0;  // 1 ms each way
  sim::Simulator sim;
  Cluster cluster(&sim, config, base::RngSeed(/*seed=*/1));
  AuditStack audit(cluster);

  sim.ScheduleAt(1.0, [&] {
    cluster.InjectTransaction(CrossShardTxn(1.0, 5.0));
  });
  const RunMetrics m = cluster.Run();

  EXPECT_EQ(m.txns_committed, 1u);
  EXPECT_EQ(m.remote_reads_issued, 1u);
  EXPECT_EQ(m.remote_reads_served, 1u);
  // Request and reply each crossed the 1 ms fabric, so the rendezvous
  // cannot beat two hops.
  EXPECT_GE(m.remote_wait_seconds, 0.002);
  EXPECT_EQ(m.remote_retries, 0u);
  EXPECT_EQ(m.link_messages_lost, 0u);
  audit.ExpectClean();
}

TEST(InterconnectTest, PartitionRecoveredByRetry) {
  // The cut covers the first sends; the backed-off retries walk out of
  // the window and the read completes fresh — no fallback needed.
  ShardedConfig config = ExternalCluster(2);
  config.base.remote_timeout_s = 0.05;
  config.base.remote_retry_backoff = 2.0;
  config.base.remote_retry_max = 5;
  config.cluster_faults = "partition@0.5+1:shards=0";
  sim::Simulator sim;
  Cluster cluster(&sim, config, base::RngSeed(/*seed=*/1));
  AuditStack audit(cluster);

  sim.ScheduleAt(1.0, [&] {
    cluster.InjectTransaction(CrossShardTxn(1.0, 5.0));
  });
  const RunMetrics m = cluster.Run();

  EXPECT_EQ(m.txns_committed, 1u);
  EXPECT_EQ(m.txns_committed_stale, 0u);
  // Sends at ~1.0, 1.05, 1.15, 1.35 die in the cut; the 1.75 retry
  // lands after the heal at 1.5.
  EXPECT_EQ(m.remote_retries, 4u);
  EXPECT_EQ(m.link_messages_lost, 4u);
  EXPECT_EQ(m.remote_timeouts, 0u);
  EXPECT_EQ(m.remote_degraded_reads, 0u);
  EXPECT_EQ(m.partition_windows, 1u);
  EXPECT_DOUBLE_EQ(m.partition_seconds, 1.0);
  // The first post-heal delivery measures the reconnect gap.
  EXPECT_GE(m.time_to_reconnect, 0.0);
  audit.ExpectClean();
}

TEST(InterconnectTest, ExhaustionFallsBackToDegradedStaleRead) {
  // The partition outlives the whole retry budget; with
  // remote_fallback=stale the home shard serves its local replica and
  // the transaction commits stale.
  ShardedConfig config = ExternalCluster(2);
  config.base.remote_timeout_s = 0.05;
  config.base.remote_retry_max = 1;
  config.base.remote_fallback = RemoteFallback::kStale;
  config.cluster_faults = "partition@0.5+4:shards=0";
  sim::Simulator sim;
  Cluster cluster(&sim, config, base::RngSeed(/*seed=*/1));
  AuditStack audit(cluster);

  sim.ScheduleAt(1.0, [&] {
    cluster.InjectTransaction(CrossShardTxn(1.0, 5.0));
  });
  const RunMetrics m = cluster.Run();

  EXPECT_EQ(m.txns_committed, 1u);
  EXPECT_EQ(m.txns_committed_stale, 1u);
  EXPECT_EQ(m.remote_retries, 1u);
  EXPECT_EQ(m.remote_timeouts, 1u);
  EXPECT_EQ(m.remote_degraded_reads, 1u);
  EXPECT_EQ(m.txns_remote_unavailable, 0u);
  EXPECT_EQ(m.link_messages_lost, 2u);  // original send + one retry
  EXPECT_EQ(audit.census.timeouts(), 2u);  // one retry + one exhausted
  EXPECT_EQ(audit.census.degraded(), 1u);
  audit.ExpectClean();
}

TEST(InterconnectTest, ExhaustionAbortsUnderAbortFallback) {
  ShardedConfig config = ExternalCluster(2);
  config.base.remote_timeout_s = 0.05;
  config.base.remote_retry_max = 1;
  config.base.remote_fallback = RemoteFallback::kAbort;
  config.cluster_faults = "partition@0.5+4:shards=0";
  sim::Simulator sim;
  Cluster cluster(&sim, config, base::RngSeed(/*seed=*/1));
  AuditStack audit(cluster);

  sim.ScheduleAt(1.0, [&] {
    cluster.InjectTransaction(CrossShardTxn(1.0, 5.0));
  });
  const RunMetrics m = cluster.Run();

  EXPECT_EQ(m.txns_committed, 0u);
  EXPECT_EQ(m.txns_remote_unavailable, 1u);
  EXPECT_EQ(m.txns_terminal(), 1u);
  EXPECT_EQ(m.remote_timeouts, 1u);
  EXPECT_EQ(m.remote_degraded_reads, 0u);
  audit.ExpectClean();
}

TEST(InterconnectTest, ZeroTimeoutWaitsForeverLikeBefore) {
  // remote_timeout_s=0 is the pre-interconnect contract: the parked
  // read waits until the firm deadline fires, and none of the new
  // machinery engages.
  ShardedConfig config = ExternalCluster(2);
  config.cluster_faults = "partition@0.5+4:shards=0";
  sim::Simulator sim;
  Cluster cluster(&sim, config, base::RngSeed(/*seed=*/1));
  AuditStack audit(cluster);

  sim.ScheduleAt(1.0, [&] {
    cluster.InjectTransaction(CrossShardTxn(1.0, 2.0));
  });
  const RunMetrics m = cluster.Run();

  EXPECT_EQ(m.txns_committed, 0u);
  EXPECT_EQ(m.txns_missed_deadline, 1u);
  EXPECT_EQ(m.remote_retries, 0u);
  EXPECT_EQ(m.remote_timeouts, 0u);
  EXPECT_EQ(m.remote_degraded_reads, 0u);
  EXPECT_EQ(m.link_messages_lost, 1u);
  audit.ExpectClean();
}

TEST(InterconnectTest, DeadlineBoundsTheRetrySchedule) {
  // A retry whose backed-off timer cannot fire before the deadline is
  // pointless; the budget collapses early and the fallback fires with
  // attempts left, giving the degraded read time to commit.
  ShardedConfig config = ExternalCluster(2);
  config.base.remote_timeout_s = 0.05;
  config.base.remote_retry_backoff = 4.0;
  config.base.remote_retry_max = 10;
  config.base.remote_fallback = RemoteFallback::kStale;
  config.cluster_faults = "partition@0.5+4:shards=0";
  sim::Simulator sim;
  Cluster cluster(&sim, config, base::RngSeed(/*seed=*/1));
  AuditStack audit(cluster);

  // Deadline 1.5: timers at 1.05 (+0.05) and 1.25 (+0.2) fit, but the
  // next +0.8 wait would land at 2.05 > 1.5, so exhaustion happens at
  // 1.25 with 8 retries unused.
  sim.ScheduleAt(1.0, [&] {
    cluster.InjectTransaction(CrossShardTxn(1.0, 1.5));
  });
  const RunMetrics m = cluster.Run();

  EXPECT_EQ(m.txns_committed, 1u);
  EXPECT_EQ(m.txns_committed_stale, 1u);
  EXPECT_EQ(m.remote_retries, 1u);
  EXPECT_EQ(m.remote_timeouts, 1u);
  EXPECT_EQ(m.remote_degraded_reads, 1u);
  audit.ExpectClean();
}

TEST(InterconnectTest, SteadyLossAuditsCleanAcrossSeeds) {
  // Generated workload under a steadily lossy, jittery fabric with a
  // timeout/retry budget: whatever the fabric eats, the census must
  // balance — every issued read resolved, degraded, aborted, or
  // dropped at its one legal stage.
  for (std::uint64_t seed : {1ull, 7ull, 11ull}) {
    ShardedConfig config;
    config.base.sim_seconds = 20.0;
    config.shards = 4;
    config.link_latency_us = 200.0;
    config.link_jitter_us = 100.0;
    config.link_loss_p = 0.05;
    config.base.remote_timeout_s = 0.05;
    config.base.remote_fallback = RemoteFallback::kStale;
    sim::Simulator sim;
    Cluster cluster(&sim, config, base::RngSeed(seed));
    AuditStack audit(cluster);
    const RunMetrics m = cluster.Run();
    EXPECT_GT(m.remote_reads_issued, 0u) << "seed " << seed;
    EXPECT_GT(m.link_messages_lost, 0u) << "seed " << seed;
    audit.ExpectClean();
  }
}

TEST(InterconnectTest, InertConfigMatchesPerfectFabric) {
  // Belt and braces for the byte-identity guard: explicitly zeroed
  // interconnect knobs produce metrics identical to the defaults.
  auto run = [](const ShardedConfig& config) {
    sim::Simulator sim;
    Cluster cluster(&sim, config, base::RngSeed(/*seed=*/3));
    return cluster.Run();
  };
  ShardedConfig plain;
  plain.base.sim_seconds = 20.0;
  plain.shards = 4;
  ShardedConfig zeroed = plain;
  zeroed.link_latency_us = 0.0;
  zeroed.link_jitter_us = 0.0;
  zeroed.link_loss_p = 0.0;
  zeroed.base.remote_timeout_s = 0.0;
  const RunMetrics a = run(plain);
  const RunMetrics b = run(zeroed);
  EXPECT_EQ(a.txns_committed, b.txns_committed);
  EXPECT_EQ(a.remote_reads_issued, b.remote_reads_issued);
  EXPECT_EQ(a.remote_reads_served, b.remote_reads_served);
  EXPECT_DOUBLE_EQ(a.remote_wait_seconds, b.remote_wait_seconds);
  EXPECT_DOUBLE_EQ(a.value_committed, b.value_committed);
  EXPECT_EQ(a.remote_retries, 0u);
  EXPECT_EQ(a.link_messages_lost, 0u);
}

}  // namespace
}  // namespace strip::core
