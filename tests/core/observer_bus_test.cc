// ObserverBus fan-out semantics: registration order, reentrant
// add/remove from inside callbacks (including nested dispatches), RAII
// registration, and the OnPhase / OnStaleRead hooks end to end through
// a real System run.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/observer_bus.h"
#include "core/system.h"
#include "sim/simulator.h"

namespace strip::core {
namespace {

// Appends its tag to a shared log on every phase event.
class TaggedObserver : public SystemObserver {
 public:
  TaggedObserver(std::string tag, std::vector<std::string>* log)
      : tag_(std::move(tag)), log_(log) {}

  void OnPhase(sim::Time now, Phase phase) override {
    (void)now;
    log_->push_back(tag_ + ":" + PhaseName(phase));
    ++events_;
  }

  int events() const { return events_; }

 private:
  std::string tag_;
  std::vector<std::string>* log_;
  int events_ = 0;
};

// Removes a victim observer (possibly itself) from inside a callback.
class RemovingObserver : public TaggedObserver {
 public:
  RemovingObserver(std::string tag, std::vector<std::string>* log,
                   ObserverBus* bus)
      : TaggedObserver(std::move(tag), log), bus_(bus) {}

  void set_victim(SystemObserver* victim) { victim_ = victim; }

  void OnPhase(sim::Time now, Phase phase) override {
    TaggedObserver::OnPhase(now, phase);
    if (victim_ != nullptr) {
      bus_->Remove(victim_);
      victim_ = nullptr;
    }
  }

 private:
  ObserverBus* bus_;
  SystemObserver* victim_ = nullptr;
};

// Adds another observer from inside a callback.
class AddingObserver : public TaggedObserver {
 public:
  AddingObserver(std::string tag, std::vector<std::string>* log,
                 ObserverBus* bus, SystemObserver* recruit)
      : TaggedObserver(std::move(tag), log), bus_(bus), recruit_(recruit) {}

  void OnPhase(sim::Time now, Phase phase) override {
    TaggedObserver::OnPhase(now, phase);
    if (recruit_ != nullptr) {
      bus_->Add(recruit_);
      recruit_ = nullptr;
    }
  }

 private:
  ObserverBus* bus_;
  SystemObserver* recruit_ = nullptr;
};

TEST(ObserverBusTest, NotifiesInRegistrationOrder) {
  ObserverBus bus;
  std::vector<std::string> log;
  TaggedObserver a("a", &log), b("b", &log), c("c", &log);
  bus.Add(&a);
  bus.Add(&b);
  bus.Add(&c);
  EXPECT_EQ(bus.size(), 3u);

  bus.NotifyPhase(1.0, SystemObserver::Phase::kWarmupEnd);
  EXPECT_EQ(log, (std::vector<std::string>{
                     "a:warmup_end", "b:warmup_end", "c:warmup_end"}));
}

TEST(ObserverBusTest, EmptyAndSizeTrackMembership) {
  ObserverBus bus;
  EXPECT_TRUE(bus.empty());
  std::vector<std::string> log;
  TaggedObserver a("a", &log);
  bus.Add(&a);
  EXPECT_FALSE(bus.empty());
  EXPECT_EQ(bus.size(), 1u);
  EXPECT_TRUE(bus.Remove(&a));
  EXPECT_TRUE(bus.empty());
  // Removing an unregistered observer reports false.
  EXPECT_FALSE(bus.Remove(&a));
}

TEST(ObserverBusTest, RemoveDuringDispatchSkipsLaterObserver) {
  ObserverBus bus;
  std::vector<std::string> log;
  RemovingObserver remover("r", &log, &bus);
  TaggedObserver victim("v", &log);
  bus.Add(&remover);
  bus.Add(&victim);
  remover.set_victim(&victim);

  // The victim sits after the remover, so it must not hear the event
  // that removed it.
  bus.NotifyPhase(1.0, SystemObserver::Phase::kRunEnd);
  EXPECT_EQ(log, std::vector<std::string>{"r:run_end"});
  EXPECT_EQ(bus.size(), 1u);

  // Later events reach only the survivor.
  bus.NotifyPhase(2.0, SystemObserver::Phase::kRunEnd);
  EXPECT_EQ(remover.events(), 2);
  EXPECT_EQ(victim.events(), 0);
}

TEST(ObserverBusTest, RemoveSelfDuringDispatchKeepsOthersRunning) {
  ObserverBus bus;
  std::vector<std::string> log;
  RemovingObserver remover("r", &log, &bus);
  TaggedObserver after("a", &log);
  bus.Add(&remover);
  bus.Add(&after);
  remover.set_victim(&remover);

  bus.NotifyPhase(1.0, SystemObserver::Phase::kWarmupEnd);
  // The remover heard the event, removed itself, and the walk continued.
  EXPECT_EQ(log, (std::vector<std::string>{"r:warmup_end", "a:warmup_end"}));
  EXPECT_EQ(bus.size(), 1u);

  bus.NotifyPhase(2.0, SystemObserver::Phase::kWarmupEnd);
  EXPECT_EQ(remover.events(), 1);
  EXPECT_EQ(after.events(), 2);
}

TEST(ObserverBusTest, AddDuringDispatchHearsNextEventOnly) {
  ObserverBus bus;
  std::vector<std::string> log;
  TaggedObserver recruit("n", &log);
  AddingObserver adder("a", &log, &bus, &recruit);
  bus.Add(&adder);

  bus.NotifyPhase(1.0, SystemObserver::Phase::kWarmupEnd);
  // The recruit was added mid-dispatch and must not hear that event.
  EXPECT_EQ(log, std::vector<std::string>{"a:warmup_end"});
  EXPECT_EQ(bus.size(), 2u);

  bus.NotifyPhase(2.0, SystemObserver::Phase::kRunEnd);
  EXPECT_EQ(log, (std::vector<std::string>{"a:warmup_end", "a:run_end",
                                           "n:run_end"}));
}

TEST(ObserverBusTest, ScopedObserverDetachesOnScopeExit) {
  ObserverBus bus;
  std::vector<std::string> log;
  TaggedObserver a("a", &log);
  {
    ScopedObserver scoped(&bus, &a);
    EXPECT_EQ(bus.size(), 1u);
    bus.NotifyPhase(1.0, SystemObserver::Phase::kWarmupEnd);
  }
  EXPECT_TRUE(bus.empty());
  bus.NotifyPhase(2.0, SystemObserver::Phase::kRunEnd);
  EXPECT_EQ(a.events(), 1);
}

// Fires one nested notify round from inside its own callback.
class NestingObserver : public TaggedObserver {
 public:
  NestingObserver(std::string tag, std::vector<std::string>* log,
                  ObserverBus* bus)
      : TaggedObserver(std::move(tag), log), bus_(bus) {}

  void OnPhase(sim::Time now, Phase phase) override {
    TaggedObserver::OnPhase(now, phase);
    if (!fired_) {
      fired_ = true;
      bus_->NotifyPhase(now, SystemObserver::Phase::kRunEnd);
    }
  }

 private:
  ObserverBus* bus_;
  bool fired_ = false;
};

TEST(ObserverBusTest, RemoveInsideNestedDispatchSkipsOuterWalkToo) {
  ObserverBus bus;
  std::vector<std::string> log;
  NestingObserver nester("n", &log, &bus);
  RemovingObserver remover("r", &log, &bus);
  TaggedObserver victim("v", &log);
  bus.Add(&nester);
  bus.Add(&remover);
  bus.Add(&victim);
  remover.set_victim(&victim);

  // Outer round (warmup_end): the nester first fires a nested run_end
  // round; inside it the remover drops the victim. The victim must
  // hear neither the nested event nor the remainder of the *outer*
  // round — its slot is nulled in place, never erased, so the outer
  // walk's indexes stay aligned (the dispatch assertion enforces
  // this).
  bus.NotifyPhase(1.0, SystemObserver::Phase::kWarmupEnd);
  EXPECT_EQ(log, (std::vector<std::string>{"n:warmup_end", "n:run_end",
                                           "r:run_end", "r:warmup_end"}));
  EXPECT_EQ(victim.events(), 0);
  EXPECT_EQ(bus.size(), 2u);

  // The nulled slot was compacted when the outermost dispatch
  // unwound; later rounds reach only the survivors.
  bus.NotifyPhase(2.0, SystemObserver::Phase::kRunEnd);
  EXPECT_EQ(victim.events(), 0);
  EXPECT_EQ(remover.events(), 3);
}

// The new hooks through a real run: a System with warm-up fires
// kWarmupEnd at the warm-up boundary and kRunEnd at the end; a stale
// view read fires OnStaleRead before the transaction terminates.
class PhaseAndStaleProbe : public SystemObserver {
 public:
  void OnPhase(sim::Time now, Phase phase) override {
    phases.emplace_back(now, phase);
  }
  void OnStaleRead(sim::Time now, const txn::Transaction& transaction,
                   db::ObjectId object) override {
    (void)now;
    stale_txn_ids.push_back(transaction.id().value());
    stale_objects.push_back(object);
  }

  std::vector<std::pair<sim::Time, Phase>> phases;
  std::vector<std::uint64_t> stale_txn_ids;
  std::vector<db::ObjectId> stale_objects;
};

TEST(ObserverBusTest, SystemFiresPhaseBoundaries) {
  sim::Simulator sim;
  Config config;
  config.sim_seconds = 5.0;
  config.warmup_seconds = 2.0;
  System system(&sim, config, base::RngSeed(7));
  PhaseAndStaleProbe probe;
  ScopedObserver scoped(&system.observer_bus(), &probe);

  system.Run();

  ASSERT_EQ(probe.phases.size(), 2u);
  EXPECT_DOUBLE_EQ(probe.phases[0].first, 2.0);
  EXPECT_EQ(probe.phases[0].second, SystemObserver::Phase::kWarmupEnd);
  EXPECT_DOUBLE_EQ(probe.phases[1].first, 5.0);
  EXPECT_EQ(probe.phases[1].second, SystemObserver::Phase::kRunEnd);
}

TEST(ObserverBusTest, SystemFiresOnStaleRead) {
  sim::Simulator sim;
  Config config;
  config.external_workload = true;
  config.sim_seconds = 10.0;
  config.policy = PolicyKind::kTransactionFirst;
  // Under MA with a tiny alpha the never-refreshed initial versions
  // are already stale when the transaction reads at t=1.
  config.alpha = 0.5;
  System system(&sim, config, base::RngSeed(1));
  PhaseAndStaleProbe probe;
  ScopedObserver scoped(&system.observer_bus(), &probe);

  const db::ObjectId object{db::ObjectClass::kLowImportance, 3};

  sim.ScheduleAt(1.0, [&] {
    txn::Transaction::Params p;
    p.id = base::TxnId(42);
    p.cls = txn::TxnClass::kHighValue;
    p.value = 1.0;
    p.arrival_time = 1.0;
    p.deadline = 9.0;
    p.computation_instructions = 1000;
    p.lookup_instructions = 4000;
    p.read_set = {object};
    system.InjectTransaction(p);
  });

  system.Run();

  ASSERT_FALSE(probe.stale_txn_ids.empty());
  EXPECT_EQ(probe.stale_txn_ids.front(), 42u);
  EXPECT_EQ(probe.stale_objects.front(), object);
}

}  // namespace
}  // namespace strip::core
