// The sharded API's backward-compatibility contract: a Cluster with
// shards == 1 is the uniprocessor model, bit-for-bit. Every policy and
// every staleness criterion must produce metrics equal — and a
// ToString summary byte-identical — to driving the System directly
// with the same Config and seed. This is what lets every existing
// caller move to the Cluster API without changing a single result.

#include <string>

#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/config.h"
#include "core/system.h"
#include "sim/simulator.h"

namespace strip::core {
namespace {

Config BaselineConfig(PolicyKind policy, db::StalenessCriterion staleness) {
  Config config;
  config.policy = policy;
  config.staleness = staleness;
  config.sim_seconds = 20.0;
  return config;
}

constexpr PolicyKind kAllPolicies[] = {
    PolicyKind::kUpdateFirst,  PolicyKind::kTransactionFirst,
    PolicyKind::kSplitUpdates, PolicyKind::kOnDemand,
    PolicyKind::kFixedFraction,
};

constexpr db::StalenessCriterion kAllCriteria[] = {
    db::StalenessCriterion::kMaxAge,
    db::StalenessCriterion::kMaxAgeArrival,
    db::StalenessCriterion::kUnappliedUpdate,
    db::StalenessCriterion::kCombined,
};

TEST(ClusterIdentityTest, SingleShardMatchesSystemForEveryPolicyAndCriterion) {
  for (const PolicyKind policy : kAllPolicies) {
    for (const db::StalenessCriterion staleness : kAllCriteria) {
      const Config config = BaselineConfig(policy, staleness);
      SCOPED_TRACE(std::string(PolicyKindName(policy)) + "/" +
                   db::StalenessCriterionName(staleness));

      sim::Simulator direct_sim;
      System system(&direct_sim, config, base::RngSeed(/*seed=*/7));
      const RunMetrics direct = system.Run();

      ShardedConfig sharded;
      sharded.base = config;
      sharded.shards = 1;
      sim::Simulator cluster_sim;
      Cluster cluster(&cluster_sim, sharded, base::RngSeed(/*seed=*/7));
      const RunMetrics via_cluster = cluster.Run();

      // Byte-identical summary catches any drift in any rendered
      // metric at once; the spot checks below make failures readable.
      EXPECT_EQ(direct.ToString(), via_cluster.ToString());
      EXPECT_EQ(direct.txns_arrived, via_cluster.txns_arrived);
      EXPECT_EQ(direct.txns_committed, via_cluster.txns_committed);
      EXPECT_EQ(direct.updates_arrived, via_cluster.updates_arrived);
      EXPECT_EQ(direct.updates_installed, via_cluster.updates_installed);
      EXPECT_EQ(direct.value_committed, via_cluster.value_committed);
      EXPECT_EQ(direct.cpu_txn_seconds, via_cluster.cpu_txn_seconds);
      EXPECT_EQ(direct.cpu_update_seconds, via_cluster.cpu_update_seconds);
      EXPECT_EQ(direct.f_old_low, via_cluster.f_old_low);
      EXPECT_EQ(direct.f_old_high, via_cluster.f_old_high);
      EXPECT_EQ(direct.response_mean, via_cluster.response_mean);
      EXPECT_EQ(via_cluster.txns_cross_shard, 0u);
      EXPECT_EQ(via_cluster.remote_reads_issued, 0u);

      // The single shard's own metrics are the aggregate, verbatim.
      EXPECT_EQ(cluster.shards(), 1);
      EXPECT_EQ(cluster.shard_metrics(0).ToString(),
                via_cluster.ToString());
    }
  }
}

TEST(ClusterIdentityTest, SingleShardSliceAndHaltMatchSystem) {
  const Config config =
      BaselineConfig(PolicyKind::kOnDemand, db::StalenessCriterion::kMaxAge);

  sim::Simulator direct_sim;
  System system(&direct_sim, config, base::RngSeed(/*seed=*/3));
  const RunMetrics direct = system.Run();

  ShardedConfig sharded;
  sharded.base = config;
  sim::Simulator cluster_sim;
  Cluster cluster(&cluster_sim, sharded, base::RngSeed(/*seed=*/3));
  int slices = 0;
  while (!cluster.RunSlice(1.5)) ++slices;
  EXPECT_GE(slices, 12);
  EXPECT_EQ(direct.ToString(), cluster.metrics().ToString());
}

TEST(ClusterIdentityTest, ShardedSliceMatchesShardedRun) {
  ShardedConfig sharded;
  sharded.base =
      BaselineConfig(PolicyKind::kOnDemand, db::StalenessCriterion::kMaxAge);
  sharded.shards = 3;

  sim::Simulator run_sim;
  Cluster whole(&run_sim, sharded, base::RngSeed(/*seed=*/11));
  const RunMetrics unsliced = whole.Run();

  sim::Simulator slice_sim;
  Cluster sliced(&slice_sim, sharded, base::RngSeed(/*seed=*/11));
  while (!sliced.RunSlice(0.7)) {
  }
  EXPECT_EQ(unsliced.ToString(), sliced.metrics().ToString());
  for (int s = 0; s < sharded.shards; ++s) {
    EXPECT_EQ(whole.shard_metrics(s).ToString(),
              sliced.shard_metrics(s).ToString());
  }
}

TEST(ClusterIdentityTest, ShardedRunIsDeterministic) {
  ShardedConfig sharded;
  sharded.base = BaselineConfig(PolicyKind::kTransactionFirst,
                                db::StalenessCriterion::kUnappliedUpdate);
  sharded.shards = 4;
  sharded.placement = db::PlacementKind::kRange;

  sim::Simulator sim_a;
  Cluster a(&sim_a, sharded, base::RngSeed(/*seed=*/5));
  const RunMetrics first = a.Run();

  sim::Simulator sim_b;
  Cluster b(&sim_b, sharded, base::RngSeed(/*seed=*/5));
  const RunMetrics second = b.Run();

  EXPECT_EQ(first.ToString(), second.ToString());
  EXPECT_EQ(a.remote_requests_issued(), b.remote_requests_issued());
  for (int s = 0; s < sharded.shards; ++s) {
    EXPECT_EQ(a.shard_metrics(s).ToString(), b.shard_metrics(s).ToString());
  }
}

}  // namespace
}  // namespace strip::core
