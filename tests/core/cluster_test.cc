// Cross-shard rendezvous edge cases against the full Cluster.
//
// The external-workload scenarios inject arrivals at exact instants
// (global object ids; the cluster routes them), so the two-phase-hold
// protocol's corner cases — a transaction touching every shard, a
// deadline firing mid-wait, a slow peer — are pinned deterministically.
// The generated-workload scenarios sweep placement/seed combinations
// and let the auditors (per-shard InvariantAuditor conservation plus
// the cross-shard ClusterAuditor census) do the checking.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "check/cluster_auditor.h"
#include "check/invariant_auditor.h"
#include "core/cluster.h"
#include "core/config.h"
#include "sim/simulator.h"

namespace strip::core {
namespace {

// Baseline cost arithmetic at ips = 50e6: a view read (x_lookup =
// 4000) is 80 us; 50e6 compute instructions are 1 s.

txn::Transaction::Params SimpleTxn(std::uint64_t id, sim::Time arrival,
                                   double comp_instructions,
                                   sim::Time deadline,
                                   std::vector<db::ObjectId> reads) {
  txn::Transaction::Params p;
  p.id = base::TxnId(id);
  p.cls = txn::TxnClass::kHighValue;
  p.value = 2.0;
  p.arrival_time = arrival;
  p.deadline = deadline;
  p.computation_instructions = comp_instructions;
  p.lookup_instructions = 4000;
  p.read_set = std::move(reads);
  return p;
}

ShardedConfig ExternalCluster(int shards) {
  ShardedConfig sharded;
  sharded.base.external_workload = true;
  sharded.base.sim_seconds = 30.0;
  sharded.shards = shards;
  return sharded;
}

// Attaches the full audit stack to `cluster`; owns the auditors.
struct AuditStack {
  explicit AuditStack(Cluster& cluster) {
    for (int s = 0; s < cluster.shards(); ++s) {
      auto auditor = std::make_unique<check::InvariantAuditor>();
      auditor->set_system(&cluster.shard(s));
      cluster.shard(s).AddObserver(auditor.get());
      per_shard.push_back(std::move(auditor));
    }
    census.set_cluster(&cluster);
    cluster.AddObserverToAllShards(&census);
  }

  void ExpectClean() {
    for (std::size_t s = 0; s < per_shard.size(); ++s) {
      EXPECT_TRUE(per_shard[s]->ok())
          << "shard " << s << ":\n" << per_shard[s]->Report();
    }
    census.FinishRun();
    EXPECT_TRUE(census.ok()) << census.Report();
  }

  std::vector<std::unique_ptr<check::InvariantAuditor>> per_shard;
  check::ClusterAuditor census;
};

TEST(ClusterTest, TransactionTouchingEveryShardCommits) {
  const int kShards = 4;
  sim::Simulator sim;
  Cluster cluster(&sim, ExternalCluster(kShards), base::RngSeed(/*seed=*/1));
  AuditStack audit(cluster);

  // Hash placement: global {kLow, i} lives on shard i % 4, so reads of
  // indexes 0..3 touch all four shards; index 0 makes shard 0 home.
  sim.ScheduleAt(1.0, [&] {
    cluster.InjectTransaction(
        SimpleTxn(1, 1.0, 1'000'000, 8.0,
                  {{db::ObjectClass::kLowImportance, 0},
                   {db::ObjectClass::kLowImportance, 1},
                   {db::ObjectClass::kLowImportance, 2},
                   {db::ObjectClass::kLowImportance, 3}}));
  });
  const RunMetrics m = cluster.Run();

  EXPECT_EQ(m.txns_committed, 1u);
  EXPECT_EQ(m.txns_cross_shard, 1u);
  EXPECT_EQ(m.remote_reads_issued, 3u);   // every read but the home one
  EXPECT_EQ(m.remote_reads_served, 3u);
  EXPECT_EQ(m.remote_replies_orphaned, 0u);
  EXPECT_EQ(cluster.remote_requests_issued(), 3u);
  EXPECT_EQ(cluster.shard_metrics(0).txns_committed, 1u);
  // The three peers each served one read but ran no transaction.
  for (int s = 1; s < kShards; ++s) {
    EXPECT_EQ(cluster.shard_metrics(s).remote_reads_served, 1u);
    EXPECT_EQ(cluster.shard_metrics(s).txns_committed, 0u);
    EXPECT_GT(cluster.shard_metrics(s).cpu_remote_seconds, 0.0);
  }
  EXPECT_EQ(audit.census.issued(), 3u);
  EXPECT_EQ(audit.census.resolved(), 3u);
  audit.ExpectClean();
}

TEST(ClusterTest, DeadlineDuringRemoteWaitOrphansTheReply) {
  sim::Simulator sim;
  Cluster cluster(&sim, ExternalCluster(2), base::RngSeed(/*seed=*/1));
  AuditStack audit(cluster);

  // Shard 1's CPU is pinned by a 1-second local transaction from
  // t=0.5, so a remote read posted to it waits for the segment to end.
  sim.ScheduleAt(0.5, [&] {
    cluster.InjectTransaction(SimpleTxn(
        1, 0.5, 50'000'000, 10.0, {{db::ObjectClass::kLowImportance, 1}}));
  });
  // Txn 2 (home shard 0: first read is local) reaches its cross-shard
  // read at ~t=1.00016 with deadline 1.2; shard 1 cannot serve it
  // before ~1.5, so the firm deadline fires mid-wait and the eventual
  // reply resolves as orphaned.
  sim.ScheduleAt(1.0, [&] {
    cluster.InjectTransaction(
        SimpleTxn(2, 1.0, 4'000, 1.2,
                  {{db::ObjectClass::kLowImportance, 0},
                   {db::ObjectClass::kLowImportance, 1}}));
  });
  const RunMetrics m = cluster.Run();

  EXPECT_EQ(m.txns_committed, 1u);  // the pinning transaction
  EXPECT_EQ(m.txns_missed_deadline, 1u);
  EXPECT_EQ(m.remote_reads_issued, 1u);
  EXPECT_EQ(m.remote_reads_served, 1u);
  EXPECT_EQ(m.remote_replies_orphaned, 1u);
  EXPECT_GT(m.remote_wait_seconds, 0.0);
  EXPECT_EQ(audit.census.orphaned(), 1u);
  audit.ExpectClean();
}

TEST(ClusterTest, RemoteShardMidOutageStaysConserved) {
  // Shard 1 takes a feed outage (with catch-up replay) and a CPU
  // degradation window while cross-shard traffic keeps hitting it; the
  // auditors verify conservation and census through fault begin/end.
  ShardedConfig sharded;
  sharded.base.sim_seconds = 30.0;
  sharded.base.policy = PolicyKind::kOnDemand;
  sharded.shards = 2;
  sharded.shard_faults = {"", "outage@5+8:speedup=2;cpu@16+6:factor=0.5"};

  sim::Simulator sim;
  Cluster cluster(&sim, sharded, base::RngSeed(/*seed=*/9));
  AuditStack audit(cluster);
  const RunMetrics m = cluster.Run();

  EXPECT_GT(m.fault_windows, 0u);
  EXPECT_EQ(cluster.shard_metrics(0).fault_windows, 0u);
  EXPECT_GT(cluster.shard_metrics(1).updates_outage_deferred, 0u);
  EXPECT_GT(m.txns_cross_shard, 0u);
  EXPECT_GT(m.remote_reads_served, 0u);
  // Truncation accounting: every issued request either resolved or was
  // cut mid-rendezvous by the end of the run.
  EXPECT_EQ(audit.census.issued(),
            audit.census.resolved() + audit.census.outstanding());
  audit.ExpectClean();
}

TEST(ClusterTest, GovernorOnRemoteShardOnly) {
  // Feed skew floods shard 1 (90% of a doubled feed) under TF, whose
  // update queue backs up until the overload governor engages there;
  // the lightly loaded home shard 0 never crosses the watermark. Cross-
  // shard reads of governed data must still resolve cleanly.
  ShardedConfig sharded;
  sharded.base.sim_seconds = 30.0;
  sharded.base.policy = PolicyKind::kTransactionFirst;
  sharded.base.lambda_u = 800.0;
  sharded.base.uq_max = 400;
  sharded.base.overload_governor = true;
  sharded.shards = 2;
  sharded.feed_hot_shard = 1;
  sharded.feed_hot_fraction = 0.9;

  sim::Simulator sim;
  Cluster cluster(&sim, sharded, base::RngSeed(/*seed=*/4));
  AuditStack audit(cluster);
  const RunMetrics m = cluster.Run();

  EXPECT_GT(cluster.shard_metrics(1).governor_engagements, 0u);
  EXPECT_EQ(cluster.shard_metrics(0).governor_engagements, 0u);
  EXPECT_GT(m.txns_cross_shard, 0u);
  EXPECT_EQ(m.remote_reads_issued,
            m.remote_reads_served);
  audit.ExpectClean();
}

TEST(ClusterTest, PlacementChurnConservesUpdatesPerShard) {
  // Randomized sweep: both placements, several seeds and shard counts,
  // full generated workload. The per-shard conservation identity and
  // the cross-shard census must hold everywhere.
  for (const db::PlacementKind placement :
       {db::PlacementKind::kHash, db::PlacementKind::kRange}) {
    for (const int shards : {2, 3, 5}) {
      for (const std::uint64_t seed : {1ull, 17ull}) {
        SCOPED_TRACE(std::string(db::PlacementKindName(placement)) +
                     "/shards=" + std::to_string(shards) +
                     "/seed=" + std::to_string(seed));
        ShardedConfig sharded;
        sharded.base.sim_seconds = 10.0;
        sharded.base.policy = PolicyKind::kOnDemand;
        sharded.shards = shards;
        sharded.placement = placement;

        sim::Simulator sim;
        Cluster cluster(&sim, sharded, base::RngSeed(seed));
        AuditStack audit(cluster);
        const RunMetrics m = cluster.Run();

        std::uint64_t arrived = 0, committed = 0;
        for (int s = 0; s < shards; ++s) {
          arrived += cluster.shard_metrics(s).updates_arrived;
          committed += cluster.shard_metrics(s).txns_committed;
        }
        EXPECT_EQ(arrived, m.updates_arrived);
        EXPECT_EQ(committed, m.txns_committed);
        EXPECT_GT(m.updates_arrived, 0u);
        EXPECT_GT(m.txns_committed, 0u);
        audit.ExpectClean();
      }
    }
  }
}

}  // namespace
}  // namespace strip::core
