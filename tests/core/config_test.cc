#include "core/config.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace strip::core {
namespace {

// The default Config must be the paper's baseline — these constants
// are Tables 1-3 verbatim.
TEST(ConfigTest, DefaultsMatchPaperTable1) {
  const Config c;
  EXPECT_DOUBLE_EQ(c.lambda_u, 400.0);
  EXPECT_DOUBLE_EQ(c.p_ul, 0.5);
  EXPECT_DOUBLE_EQ(c.a_update, 0.1);
  EXPECT_EQ(c.n_low, 500);
  EXPECT_EQ(c.n_high, 500);
}

TEST(ConfigTest, DefaultsMatchPaperTable2) {
  const Config c;
  EXPECT_DOUBLE_EQ(c.lambda_t, 10.0);
  EXPECT_DOUBLE_EQ(c.p_tl, 0.5);
  EXPECT_DOUBLE_EQ(c.s_min, 0.1);
  EXPECT_DOUBLE_EQ(c.s_max, 1.0);
  EXPECT_DOUBLE_EQ(c.v_low_mean, 1.0);
  EXPECT_DOUBLE_EQ(c.v_high_mean, 2.0);
  EXPECT_DOUBLE_EQ(c.v_low_sd, 0.5);
  EXPECT_DOUBLE_EQ(c.v_high_sd, 0.5);
  EXPECT_DOUBLE_EQ(c.reads_mean, 2.0);
  EXPECT_DOUBLE_EQ(c.reads_sd, 1.0);
  EXPECT_DOUBLE_EQ(c.alpha, 7.0);
  EXPECT_DOUBLE_EQ(c.comp_mean, 0.12);
  EXPECT_DOUBLE_EQ(c.comp_sd, 0.01);
  EXPECT_DOUBLE_EQ(c.p_view, 0.0);
}

TEST(ConfigTest, DefaultsMatchPaperTable3) {
  const Config c;
  EXPECT_DOUBLE_EQ(c.ips, 50e6);
  EXPECT_DOUBLE_EQ(c.x_lookup, 4000);
  EXPECT_DOUBLE_EQ(c.x_update, 20000);
  EXPECT_DOUBLE_EQ(c.x_switch, 0);
  EXPECT_DOUBLE_EQ(c.x_queue, 0);
  EXPECT_DOUBLE_EQ(c.x_scan, 0);
  EXPECT_EQ(c.os_max, 4000);
  EXPECT_EQ(c.uq_max, 5600);
  EXPECT_TRUE(c.feasible_deadline);
  EXPECT_FALSE(c.txn_preemption);
  EXPECT_EQ(c.queue_discipline, QueueDiscipline::kFifo);
}

TEST(ConfigTest, ScenarioDefaults) {
  const Config c;
  EXPECT_EQ(c.staleness, db::StalenessCriterion::kMaxAge);
  EXPECT_FALSE(c.abort_on_stale);
  EXPECT_DOUBLE_EQ(c.sim_seconds, 1000.0);
  EXPECT_DOUBLE_EQ(c.warmup_seconds, 0.0);
  EXPECT_FALSE(c.indexed_update_queue);
  EXPECT_FALSE(c.split_importance_queues);
  EXPECT_FALSE(c.periodic_updates);
}

TEST(ConfigTest, DefaultValidates) {
  const Config c;
  EXPECT_FALSE(c.Validate().has_value());
}

TEST(ConfigTest, UpdateStreamParamsDerivation) {
  Config c;
  c.lambda_u = 123;
  c.p_ul = 0.7;
  c.a_update = 0.05;
  c.n_low = 10;
  c.n_high = 20;
  c.periodic_updates = true;
  const auto p = c.UpdateStreamParams();
  EXPECT_DOUBLE_EQ(p.arrival_rate, 123);
  EXPECT_DOUBLE_EQ(p.p_low, 0.7);
  EXPECT_DOUBLE_EQ(p.mean_age, 0.05);
  EXPECT_EQ(p.n_low, 10);
  EXPECT_EQ(p.n_high, 20);
  EXPECT_TRUE(p.periodic);
}

TEST(ConfigTest, TxnSourceParamsDerivation) {
  Config c;
  c.lambda_t = 5;
  c.p_tl = 0.25;
  c.p_view = 0.5;
  c.x_lookup = 1000;
  const auto p = c.TxnSourceParams();
  EXPECT_DOUBLE_EQ(p.arrival_rate, 5);
  EXPECT_DOUBLE_EQ(p.p_low, 0.25);
  EXPECT_DOUBLE_EQ(p.p_view, 0.5);
  EXPECT_DOUBLE_EQ(p.lookup_instructions, 1000);
  EXPECT_DOUBLE_EQ(p.ips, 50e6);
  EXPECT_DOUBLE_EQ(p.comp_mean, 0.12);
}

struct BadConfigCase {
  const char* name;
  void (*mutate)(Config&);
};

class ConfigValidationTest : public ::testing::TestWithParam<BadConfigCase> {
};

TEST_P(ConfigValidationTest, RejectsOutOfRangeParameter) {
  Config c;
  GetParam().mutate(c);
  EXPECT_TRUE(c.Validate().has_value()) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    AllBadFields, ConfigValidationTest,
    ::testing::Values(
        BadConfigCase{"lambda_u_zero", [](Config& c) { c.lambda_u = 0; }},
        BadConfigCase{"p_ul_negative", [](Config& c) { c.p_ul = -0.1; }},
        BadConfigCase{"p_ul_above_one", [](Config& c) { c.p_ul = 1.1; }},
        BadConfigCase{"a_update_zero", [](Config& c) { c.a_update = 0; }},
        BadConfigCase{"n_low_zero", [](Config& c) { c.n_low = 0; }},
        BadConfigCase{"n_high_zero", [](Config& c) { c.n_high = 0; }},
        BadConfigCase{"lambda_t_zero", [](Config& c) { c.lambda_t = 0; }},
        BadConfigCase{"p_tl_above_one", [](Config& c) { c.p_tl = 2; }},
        BadConfigCase{"slack_reversed",
                      [](Config& c) {
                        c.s_min = 1.0;
                        c.s_max = 0.1;
                      }},
        BadConfigCase{"slack_negative", [](Config& c) { c.s_min = -1; }},
        BadConfigCase{"reads_negative", [](Config& c) { c.reads_mean = -1; }},
        BadConfigCase{"comp_negative", [](Config& c) { c.comp_mean = -1; }},
        BadConfigCase{"p_view_above_one", [](Config& c) { c.p_view = 1.5; }},
        BadConfigCase{"ips_zero", [](Config& c) { c.ips = 0; }},
        BadConfigCase{"x_lookup_negative",
                      [](Config& c) { c.x_lookup = -1; }},
        BadConfigCase{"x_update_negative",
                      [](Config& c) { c.x_update = -1; }},
        BadConfigCase{"os_max_zero", [](Config& c) { c.os_max = 0; }},
        BadConfigCase{"uq_max_zero", [](Config& c) { c.uq_max = 0; }},
        BadConfigCase{"alpha_zero_under_ma",
                      [](Config& c) { c.alpha = 0; }},
        BadConfigCase{"sim_seconds_zero",
                      [](Config& c) { c.sim_seconds = 0; }},
        BadConfigCase{"warmup_past_end",
                      [](Config& c) { c.warmup_seconds = c.sim_seconds; }},
        BadConfigCase{"warmup_negative",
                      [](Config& c) { c.warmup_seconds = -1; }},
        BadConfigCase{"fcf_share_above_one",
                      [](Config& c) {
                        c.policy = PolicyKind::kFixedFraction;
                        c.update_cpu_fraction = 1.5;
                      }},
        BadConfigCase{"trigger_probability_above_one",
                      [](Config& c) { c.trigger_probability = 1.5; }},
        BadConfigCase{"x_trigger_negative",
                      [](Config& c) { c.x_trigger = -1; }},
        BadConfigCase{"buffer_hit_ratio_above_one",
                      [](Config& c) { c.buffer_hit_ratio = 1.5; }},
        BadConfigCase{"io_seconds_negative",
                      [](Config& c) { c.io_seconds = -1; }},
        BadConfigCase{"lambda_u_nan",
                      [](Config& c) {
                        c.lambda_u = std::nan("");
                      }},
        BadConfigCase{"ips_infinite",
                      [](Config& c) {
                        c.ips = std::numeric_limits<double>::infinity();
                      }},
        BadConfigCase{"sim_seconds_nan",
                      [](Config& c) {
                        c.sim_seconds = std::nan("");
                      }},
        BadConfigCase{"governor_watermarks_reversed",
                      [](Config& c) {
                        c.overload_governor = true;
                        c.governor_high_watermark = 0.2;
                        c.governor_low_watermark = 0.8;
                      }},
        BadConfigCase{"governor_high_above_one",
                      [](Config& c) {
                        c.overload_governor = true;
                        c.governor_high_watermark = 1.5;
                      }},
        BadConfigCase{"governor_stale_threshold_above_one",
                      [](Config& c) {
                        c.overload_governor = true;
                        c.governor_stale_threshold = 1.5;
                      }},
        BadConfigCase{"fault_spec_bad_kind",
                      [](Config& c) { c.faults = "meteor@1+2"; }},
        BadConfigCase{"fault_spec_missing_probability",
                      [](Config& c) { c.faults = "loss@1+2"; }}),
    [](const ::testing::TestParamInfo<BadConfigCase>& param_info) {
      return param_info.param.name;
    });

TEST(ConfigTest, FaultSpecValidation) {
  Config c;
  c.faults = "outage@10+5:speedup=4;loss@20+5:p=0.2";
  EXPECT_FALSE(c.Validate().has_value());
  c.faults = "loss@1+2";
  const auto error = c.Validate();
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("requires p="), std::string::npos);
  // Errors are one line so a CLI can print them verbatim.
  EXPECT_EQ(error->find('\n'), std::string::npos);
}

TEST(ConfigTest, AlphaUnusedUnderUuIsAccepted) {
  Config c;
  c.staleness = db::StalenessCriterion::kUnappliedUpdate;
  c.alpha = 0;  // ignored under UU
  EXPECT_FALSE(c.Validate().has_value());
}

TEST(ConfigTest, Names) {
  EXPECT_STREQ(PolicyKindName(PolicyKind::kUpdateFirst), "UF");
  EXPECT_STREQ(PolicyKindName(PolicyKind::kTransactionFirst), "TF");
  EXPECT_STREQ(PolicyKindName(PolicyKind::kSplitUpdates), "SU");
  EXPECT_STREQ(PolicyKindName(PolicyKind::kOnDemand), "OD");
  EXPECT_STREQ(PolicyKindName(PolicyKind::kFixedFraction), "FCF");
  EXPECT_STREQ(QueueDisciplineName(QueueDiscipline::kFifo), "FIFO");
  EXPECT_STREQ(QueueDisciplineName(QueueDiscipline::kLifo), "LIFO");
}

}  // namespace
}  // namespace strip::core
