// Lifecycle-hook semantics on real runs.
//
// Pins the two contracts the causal tracer depends on:
//
//  - every OnDispatch is closed by exactly one OnSegmentComplete or
//    OnPreempt before the next OnDispatch, for every policy;
//  - a stale read healed by On Demand fires BOTH OnStaleRead (at
//    detection) and OnUpdateInstalled with on_demand_by set to the
//    demanding transaction — the OD causal link.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/system.h"
#include "sim/simulator.h"

namespace strip::core {
namespace {

struct StaleReadSeen {
  sim::Time time;
  base::TxnId txn;
  db::ObjectId object;
};

struct OdInstallSeen {
  sim::Time time;
  base::TxnId txn;
  base::UpdateId update;
  db::ObjectId object;
};

class HookRecorder : public SystemObserver {
 public:
  void OnDispatch(sim::Time now, const DispatchInfo& dispatch) override {
    EXPECT_FALSE(span_open_) << "OnDispatch while a span is open at "
                             << now;
    span_open_ = true;
    ++dispatches_;
    // Exactly one of transaction/update is set.
    EXPECT_NE(dispatch.transaction == nullptr,
              dispatch.update == nullptr);
    EXPECT_GE(dispatch.instructions, 0.0);
    if (dispatch.kind == DispatchKind::kTxnOdApply) {
      od_apply_txn_ = dispatch.transaction->id();
      have_od_apply_ = true;
    }
  }

  void OnSegmentComplete(sim::Time now,
                         const DispatchInfo& dispatch) override {
    (void)dispatch;
    EXPECT_TRUE(span_open_) << "OnSegmentComplete with no open span at "
                            << now;
    span_open_ = false;
    ++completes_;
  }

  void OnPreempt(sim::Time now, const txn::Transaction& transaction,
                 PreemptReason reason) override {
    (void)transaction;
    (void)reason;
    EXPECT_TRUE(span_open_) << "OnPreempt with no open span at " << now;
    span_open_ = false;
    ++preempts_;
  }

  void OnStaleRead(sim::Time now, const txn::Transaction& transaction,
                   db::ObjectId object) override {
    stale_reads_.push_back({now, transaction.id(), object});
  }

  void OnUpdateInstalled(sim::Time now, const db::Update& update,
                         const txn::Transaction* on_demand_by) override {
    if (on_demand_by == nullptr) {
      ++plain_installs_;
      return;
    }
    // An OD install is the outcome of the most recent od-apply
    // dispatch, and belongs to the same transaction.
    EXPECT_TRUE(have_od_apply_);
    EXPECT_EQ(on_demand_by->id(), od_apply_txn_);
    od_installs_.push_back(
        {now, on_demand_by->id(), update.id, update.object});
  }

  bool span_open() const { return span_open_; }
  std::uint64_t dispatches() const { return dispatches_; }
  std::uint64_t completes() const { return completes_; }
  std::uint64_t preempts() const { return preempts_; }
  std::uint64_t plain_installs() const { return plain_installs_; }
  const std::vector<StaleReadSeen>& stale_reads() const {
    return stale_reads_;
  }
  const std::vector<OdInstallSeen>& od_installs() const {
    return od_installs_;
  }

 private:
  bool span_open_ = false;
  bool have_od_apply_ = false;
  base::TxnId od_apply_txn_{};
  std::uint64_t dispatches_ = 0;
  std::uint64_t completes_ = 0;
  std::uint64_t preempts_ = 0;
  std::uint64_t plain_installs_ = 0;
  std::vector<StaleReadSeen> stale_reads_;
  std::vector<OdInstallSeen> od_installs_;
};

TEST(SchedulerHooksTest, DispatchSpansPairUnderEveryPolicy) {
  for (PolicyKind policy :
       {PolicyKind::kUpdateFirst, PolicyKind::kTransactionFirst,
        PolicyKind::kSplitUpdates, PolicyKind::kOnDemand,
        PolicyKind::kFixedFraction}) {
    Config config;
    config.policy = policy;
    config.sim_seconds = 10.0;
    HookRecorder recorder;
    sim::Simulator simulator;
    System system(&simulator, config, base::RngSeed(11));
    system.AddObserver(&recorder);
    system.Run();
    SCOPED_TRACE(PolicyKindName(policy));
    EXPECT_GT(recorder.dispatches(), 0u);
    // Every span was closed by exactly one complete or preempt; at
    // most the end-of-run span is still open.
    EXPECT_EQ(recorder.dispatches(),
              recorder.completes() + recorder.preempts() +
                  (recorder.span_open() ? 1 : 0));
  }
}

TEST(SchedulerHooksTest, OdHealedStaleReadFiresBothHooks) {
  // A tight freshness bound under OD: view reads hit stale objects and
  // demand installs.
  Config config;
  config.policy = PolicyKind::kOnDemand;
  config.sim_seconds = 10.0;
  config.alpha = 0.5;
  config.n_low = 200;
  config.n_high = 200;
  HookRecorder recorder;
  sim::Simulator simulator;
  System system(&simulator, config, base::RngSeed(7));
  system.AddObserver(&recorder);
  const RunMetrics metrics = system.Run();

  // The hot update stream makes reads hit stale objects and the OD
  // machinery install fixes on demand.
  ASSERT_FALSE(recorder.od_installs().empty());
  ASSERT_FALSE(recorder.stale_reads().empty());

  // Every OD install is causally preceded by a stale-read detection by
  // the same transaction on the same object.
  for (const OdInstallSeen& install : recorder.od_installs()) {
    bool matched = false;
    for (const StaleReadSeen& read : recorder.stale_reads()) {
      if (read.txn == install.txn && read.object == install.object &&
          read.time <= install.time) {
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched)
        << "od install of update " << install.update << " for txn "
        << install.txn << " without a prior stale read";
  }

  // OnStaleRead fires at detection even when OD heals the read, so the
  // hook count dominates the metric (which only counts transactions
  // whose reads stayed stale).
  EXPECT_GE(recorder.stale_reads().size(),
            metrics.txns_committed_stale + metrics.txns_stale_aborted);
}

}  // namespace
}  // namespace strip::core
