#include "core/system.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace strip::core {
namespace {

RunMetrics RunSystem(const Config& config, std::uint64_t seed = 1) {
  sim::Simulator simulator;
  System system(&simulator, config, base::RngSeed(seed));
  return system.Run();
}

Config ShortBaseline(double seconds = 30.0) {
  Config config;
  config.sim_seconds = seconds;
  return config;
}

// ---------------------------------------------------------------------------
// Invariants that must hold for EVERY (policy, criterion, abort, load)
// combination: transaction conservation, update conservation, CPU
// utilization bounds, metric ranges.
// ---------------------------------------------------------------------------

struct ScenarioCase {
  PolicyKind policy;
  db::StalenessCriterion criterion;
  bool abort_on_stale;
  double lambda_t;
};

std::string ScenarioName(
    const ::testing::TestParamInfo<ScenarioCase>& info) {
  std::string name = PolicyKindName(info.param.policy);
  name += info.param.criterion == db::StalenessCriterion::kMaxAge ? "_MA"
          : info.param.criterion == db::StalenessCriterion::kUnappliedUpdate
              ? "_UU"
              : "_MAUU";
  name += info.param.abort_on_stale ? "_abort" : "_noabort";
  name += "_lt";
  name += std::to_string(static_cast<int>(info.param.lambda_t));
  return name;
}

class ScenarioInvariantsTest
    : public ::testing::TestWithParam<ScenarioCase> {
 protected:
  Config MakeConfig() const {
    Config config = ShortBaseline(25.0);
    config.policy = GetParam().policy;
    config.staleness = GetParam().criterion;
    config.abort_on_stale = GetParam().abort_on_stale;
    config.lambda_t = GetParam().lambda_t;
    return config;
  }
};

TEST_P(ScenarioInvariantsTest, TransactionsAreConserved) {
  const RunMetrics m = RunSystem(MakeConfig());
  EXPECT_EQ(m.txns_arrived,
            m.txns_terminal() + m.txns_inflight_at_end);
  EXPECT_EQ(m.txns_committed,
            m.txns_committed_fresh + m.txns_committed_stale);
  EXPECT_EQ(m.txns_arrived,
            m.txns_arrived_by_class[0] + m.txns_arrived_by_class[1]);
  EXPECT_EQ(m.txns_committed,
            m.txns_committed_by_class[0] + m.txns_committed_by_class[1]);
  EXPECT_NEAR(m.value_committed,
              m.value_committed_by_class[0] + m.value_committed_by_class[1],
              1e-9);
}

TEST_P(ScenarioInvariantsTest, CpuUtilizationIsBounded) {
  const RunMetrics m = RunSystem(MakeConfig());
  EXPECT_GE(m.rho_t(), 0.0);
  EXPECT_GE(m.rho_u(), 0.0);
  EXPECT_LE(m.rho_total(), 1.0 + 1e-9);
  EXPECT_DOUBLE_EQ(m.observed_seconds, 25.0);
}

TEST_P(ScenarioInvariantsTest, MetricRangesAreSane) {
  const RunMetrics m = RunSystem(MakeConfig());
  EXPECT_GE(m.p_md(), 0.0);
  EXPECT_LE(m.p_md(), 1.0);
  EXPECT_GE(m.p_success(), 0.0);
  EXPECT_LE(m.p_success(), 1.0);
  EXPECT_GE(m.f_old_low, 0.0);
  EXPECT_LE(m.f_old_low, 1.0);
  EXPECT_GE(m.f_old_high, 0.0);
  EXPECT_LE(m.f_old_high, 1.0);
  EXPECT_GE(m.av(), 0.0);
  EXPECT_GT(m.txns_arrived, 0u);
  EXPECT_GT(m.updates_arrived, 0u);
}

TEST_P(ScenarioInvariantsTest, UpdatesAreConserved) {
  const Config config = MakeConfig();
  sim::Simulator simulator;
  System system(&simulator, config, base::RngSeed(1));
  const RunMetrics m = system.Run();
  // Every arrived update is accounted for exactly once; one update may
  // be mid-install on the CPU when the run is cut off.
  const std::uint64_t accounted =
      m.updates_dropped_os_full + m.updates_dropped_uq_overflow +
      m.updates_dropped_expired + m.updates_installed + m.updates_unworthy +
      system.os_queue().size() + system.update_queue().size();
  EXPECT_GE(m.updates_arrived, accounted);
  EXPECT_LE(m.updates_arrived, accounted + 1);
}

TEST_P(ScenarioInvariantsTest, DeterministicBySeed) {
  const Config config = MakeConfig();
  const RunMetrics a = RunSystem(config, 99);
  const RunMetrics b = RunSystem(config, 99);
  EXPECT_EQ(a.txns_committed, b.txns_committed);
  EXPECT_EQ(a.updates_installed, b.updates_installed);
  EXPECT_DOUBLE_EQ(a.value_committed, b.value_committed);
  EXPECT_DOUBLE_EQ(a.f_old_low, b.f_old_low);
  EXPECT_DOUBLE_EQ(a.cpu_txn_seconds, b.cpu_txn_seconds);
}

INSTANTIATE_TEST_SUITE_P(
    AllPoliciesAndCriteria, ScenarioInvariantsTest,
    ::testing::Values(
        ScenarioCase{PolicyKind::kUpdateFirst,
                     db::StalenessCriterion::kMaxAge, false, 10},
        ScenarioCase{PolicyKind::kTransactionFirst,
                     db::StalenessCriterion::kMaxAge, false, 10},
        ScenarioCase{PolicyKind::kSplitUpdates,
                     db::StalenessCriterion::kMaxAge, false, 10},
        ScenarioCase{PolicyKind::kOnDemand,
                     db::StalenessCriterion::kMaxAge, false, 10},
        ScenarioCase{PolicyKind::kFixedFraction,
                     db::StalenessCriterion::kMaxAge, false, 10},
        ScenarioCase{PolicyKind::kUpdateFirst,
                     db::StalenessCriterion::kMaxAge, true, 15},
        ScenarioCase{PolicyKind::kTransactionFirst,
                     db::StalenessCriterion::kMaxAge, true, 15},
        ScenarioCase{PolicyKind::kSplitUpdates,
                     db::StalenessCriterion::kMaxAge, true, 15},
        ScenarioCase{PolicyKind::kOnDemand,
                     db::StalenessCriterion::kMaxAge, true, 15},
        ScenarioCase{PolicyKind::kUpdateFirst,
                     db::StalenessCriterion::kUnappliedUpdate, false, 10},
        ScenarioCase{PolicyKind::kTransactionFirst,
                     db::StalenessCriterion::kUnappliedUpdate, false, 10},
        ScenarioCase{PolicyKind::kSplitUpdates,
                     db::StalenessCriterion::kUnappliedUpdate, false, 10},
        ScenarioCase{PolicyKind::kOnDemand,
                     db::StalenessCriterion::kUnappliedUpdate, false, 10},
        ScenarioCase{PolicyKind::kTransactionFirst,
                     db::StalenessCriterion::kCombined, false, 10},
        ScenarioCase{PolicyKind::kOnDemand,
                     db::StalenessCriterion::kCombined, false, 10},
        ScenarioCase{PolicyKind::kTransactionFirst,
                     db::StalenessCriterion::kMaxAge, false, 25},
        ScenarioCase{PolicyKind::kOnDemand,
                     db::StalenessCriterion::kMaxAge, false, 25},
        ScenarioCase{PolicyKind::kUpdateFirst,
                     db::StalenessCriterion::kMaxAge, false, 2},
        ScenarioCase{PolicyKind::kOnDemand,
                     db::StalenessCriterion::kUnappliedUpdate, true, 10}),
    ScenarioName);

// ---------------------------------------------------------------------------
// Policy-specific behaviour.
// ---------------------------------------------------------------------------

TEST(SystemUfTest, NeverUsesUpdateQueue) {
  Config config = ShortBaseline();
  config.policy = PolicyKind::kUpdateFirst;
  config.lambda_t = 15;
  const RunMetrics m = RunSystem(config);
  EXPECT_EQ(m.uq_length_max, 0u);
  EXPECT_DOUBLE_EQ(m.uq_length_avg, 0.0);
}

TEST(SystemUfTest, KeepsDataFreshUnderOverload) {
  Config config = ShortBaseline();
  config.policy = PolicyKind::kUpdateFirst;
  config.lambda_t = 25;
  const RunMetrics m = RunSystem(config);
  EXPECT_LT(m.f_old_low, 0.15);
  EXPECT_LT(m.f_old_high, 0.15);
}

TEST(SystemUfTest, UpdateUtilizationMatchesStreamDemand) {
  // 400/s * 24000 instructions / 50 MIPS = 0.192.
  Config config = ShortBaseline(60.0);
  config.policy = PolicyKind::kUpdateFirst;
  const RunMetrics m = RunSystem(config);
  EXPECT_NEAR(m.rho_u(), 0.192, 0.02);
}

TEST(SystemUfTest, NeverStaleUnderUu) {
  Config config = ShortBaseline();
  config.policy = PolicyKind::kUpdateFirst;
  config.staleness = db::StalenessCriterion::kUnappliedUpdate;
  config.lambda_t = 20;
  const RunMetrics m = RunSystem(config);
  EXPECT_DOUBLE_EQ(m.f_old_low, 0.0);
  EXPECT_DOUBLE_EQ(m.f_old_high, 0.0);
  EXPECT_EQ(m.txns_committed_stale, 0u);
}

TEST(SystemTfTest, DataGoesStaleUnderOverload) {
  Config config = ShortBaseline();
  config.policy = PolicyKind::kTransactionFirst;
  config.lambda_t = 20;
  const RunMetrics m = RunSystem(config);
  EXPECT_GT(m.f_old_low, 0.5);
  EXPECT_GT(m.f_old_high, 0.5);
}

TEST(SystemTfTest, ExpiredUpdatesAreDiscarded) {
  Config config = ShortBaseline(40.0);
  config.policy = PolicyKind::kTransactionFirst;
  config.lambda_t = 20;
  const RunMetrics m = RunSystem(config);
  EXPECT_GT(m.updates_dropped_expired, 0u);
}

TEST(SystemSuTest, ProtectsHighImportancePartitionOnly) {
  Config config = ShortBaseline();
  config.policy = PolicyKind::kSplitUpdates;
  config.lambda_t = 20;
  const RunMetrics m = RunSystem(config);
  EXPECT_LT(m.f_old_high, 0.15);
  EXPECT_GT(m.f_old_low, 0.5);
}

TEST(SystemOdTest, AppliesUpdatesOnDemand) {
  Config config = ShortBaseline();
  config.policy = PolicyKind::kOnDemand;
  config.lambda_t = 20;
  const RunMetrics m = RunSystem(config);
  EXPECT_GT(m.updates_applied_on_demand, 0u);
}

TEST(SystemOdTest, BeatsTfOnSuccessUnderLoad) {
  Config config = ShortBaseline(60.0);
  config.lambda_t = 15;
  config.policy = PolicyKind::kOnDemand;
  const RunMetrics od = RunSystem(config);
  config.policy = PolicyKind::kTransactionFirst;
  const RunMetrics tf = RunSystem(config);
  EXPECT_GT(od.p_success(), tf.p_success() + 0.1);
}

TEST(SystemOdTest, CommittedStaleIsZeroWithAbortUnderMa) {
  Config config = ShortBaseline();
  config.policy = PolicyKind::kOnDemand;
  config.abort_on_stale = true;
  config.lambda_t = 15;
  const RunMetrics m = RunSystem(config);
  // Under MA, staleness is always detected, so no stale commit can
  // slip through.
  EXPECT_EQ(m.txns_committed_stale, 0u);
}

TEST(SystemFcfTest, UpdaterShareIsRespectedUnderOverload) {
  Config config = ShortBaseline(60.0);
  config.policy = PolicyKind::kFixedFraction;
  config.update_cpu_fraction = 0.1;
  config.lambda_t = 20;  // transactions would otherwise starve updates
  const RunMetrics m = RunSystem(config);
  EXPECT_NEAR(m.rho_u(), 0.1, 0.03);
}

TEST(SystemFcfTest, ZeroShareDegeneratesToTf) {
  Config config = ShortBaseline(40.0);
  config.lambda_t = 15;
  config.policy = PolicyKind::kFixedFraction;
  config.update_cpu_fraction = 0.0;
  const RunMetrics fcf = RunSystem(config);
  config.policy = PolicyKind::kTransactionFirst;
  const RunMetrics tf = RunSystem(config);
  EXPECT_NEAR(fcf.f_old_low, tf.f_old_low, 0.05);
  EXPECT_NEAR(fcf.p_md(), tf.p_md(), 0.05);
}

// ---------------------------------------------------------------------------
// Scenario switches.
// ---------------------------------------------------------------------------

TEST(SystemAbortTest, StaleAbortsHappenForTfUnderLoad) {
  Config config = ShortBaseline();
  config.policy = PolicyKind::kTransactionFirst;
  config.abort_on_stale = true;
  config.lambda_t = 15;
  const RunMetrics m = RunSystem(config);
  EXPECT_GT(m.txns_stale_aborted, 0u);
  EXPECT_EQ(m.txns_committed_stale, 0u);
}

TEST(SystemAbortTest, AbortsFreeCpuAndFreshenTfData) {
  Config config = ShortBaseline(60.0);
  config.policy = PolicyKind::kTransactionFirst;
  config.lambda_t = 15;
  config.abort_on_stale = false;
  const RunMetrics no_abort = RunSystem(config);
  config.abort_on_stale = true;
  const RunMetrics with_abort = RunSystem(config);
  EXPECT_LT(with_abort.f_old_high, no_abort.f_old_high * 0.7);
}

TEST(SystemFeasibleTest, DisablingFeasibleDeadlineRemovesInfeasible) {
  Config config = ShortBaseline();
  config.feasible_deadline = false;
  config.lambda_t = 20;
  const RunMetrics m = RunSystem(config);
  EXPECT_EQ(m.txns_infeasible, 0u);
  EXPECT_GT(m.txns_missed_deadline, 0u);
}

TEST(SystemFeasibleTest, ScreeningRaisesValueUnderOverload) {
  Config config = ShortBaseline(60.0);
  config.policy = PolicyKind::kTransactionFirst;
  config.lambda_t = 25;
  config.feasible_deadline = true;
  const RunMetrics with_screen = RunSystem(config);
  config.feasible_deadline = false;
  const RunMetrics without_screen = RunSystem(config);
  EXPECT_GT(with_screen.av(), without_screen.av());
}

TEST(SystemPreemptionTest, RunsAndConserves) {
  Config config = ShortBaseline();
  config.txn_preemption = true;
  config.lambda_t = 15;
  const RunMetrics m = RunSystem(config);
  EXPECT_EQ(m.txns_arrived,
            m.txns_committed + m.txns_missed_deadline + m.txns_infeasible +
                m.txns_stale_aborted + m.txns_inflight_at_end);
  EXPECT_GT(m.txns_committed, 0u);
}

TEST(SystemLifoTest, LifoKeepsDataFresherThanFifoForTf) {
  Config config = ShortBaseline(60.0);
  config.policy = PolicyKind::kTransactionFirst;
  config.lambda_t = 10;
  config.queue_discipline = QueueDiscipline::kFifo;
  const RunMetrics fifo = RunSystem(config);
  config.queue_discipline = QueueDiscipline::kLifo;
  const RunMetrics lifo = RunSystem(config);
  EXPECT_LT(lifo.f_old_low, fifo.f_old_low);
}

TEST(SystemWarmupTest, WarmupShrinksObservationWindow) {
  Config config = ShortBaseline(30.0);
  config.warmup_seconds = 10.0;
  const RunMetrics m = RunSystem(config);
  EXPECT_DOUBLE_EQ(m.observed_seconds, 20.0);
  // Rates remain in normal ranges.
  EXPECT_GT(m.txns_arrived, 0u);
  EXPECT_LE(m.rho_total(), 1.0 + 1e-9);
}

TEST(SystemSwitchCostTest, ContextSwitchesConsumeCpu) {
  Config config = ShortBaseline(40.0);
  config.policy = PolicyKind::kUpdateFirst;  // preempts constantly
  config.x_switch = 0;
  const RunMetrics free_switch = RunSystem(config);
  config.x_switch = 10000;
  const RunMetrics costly_switch = RunSystem(config);
  EXPECT_GT(costly_switch.rho_u(), free_switch.rho_u() + 0.05);
  EXPECT_LE(costly_switch.rho_total(), 1.0 + 1e-9);
}

TEST(SystemQueueBoundsTest, TinyOsQueueDropsArrivals) {
  Config config = ShortBaseline();
  config.os_max = 2;
  config.policy = PolicyKind::kTransactionFirst;
  config.lambda_t = 15;
  const RunMetrics m = RunSystem(config);
  EXPECT_GT(m.updates_dropped_os_full, 0u);
}

TEST(SystemQueueBoundsTest, TinyUpdateQueueOverflows) {
  Config config = ShortBaseline();
  config.uq_max = 10;
  config.policy = PolicyKind::kTransactionFirst;
  config.lambda_t = 15;
  const RunMetrics m = RunSystem(config);
  EXPECT_GT(m.updates_dropped_uq_overflow, 0u);
}

TEST(SystemExtensionTest, IndexedQueueHelpsOdUnderScanCost) {
  Config config = ShortBaseline(60.0);
  config.policy = PolicyKind::kOnDemand;
  config.lambda_t = 15;
  config.x_scan = 4000;
  config.indexed_update_queue = false;
  const RunMetrics scanned = RunSystem(config);
  config.indexed_update_queue = true;
  const RunMetrics indexed = RunSystem(config);
  EXPECT_GT(indexed.p_success(), scanned.p_success());
}

TEST(SystemExtensionTest, SplitQueueServiceFreshensHighPartition) {
  Config config = ShortBaseline(60.0);
  config.policy = PolicyKind::kTransactionFirst;
  config.lambda_t = 12;
  config.split_importance_queues = false;
  const RunMetrics plain = RunSystem(config);
  config.split_importance_queues = true;
  const RunMetrics split = RunSystem(config);
  EXPECT_LT(split.f_old_high, plain.f_old_high);
}

TEST(SystemExtensionTest, PeriodicUpdatesEliminateStalenessFloor) {
  Config config = ShortBaseline(40.0);
  config.policy = PolicyKind::kUpdateFirst;
  config.lambda_t = 1;
  config.periodic_updates = true;
  const RunMetrics m = RunSystem(config);
  // Every object refreshed every 2.5 s << alpha = 7 s.
  EXPECT_LT(m.f_old_low, 0.01);
  EXPECT_LT(m.f_old_high, 0.01);
}

TEST(SystemTest, LightLoadCommitsNearlyEverything) {
  Config config = ShortBaseline(60.0);
  config.lambda_t = 1;
  const RunMetrics m = RunSystem(config);
  EXPECT_LT(m.p_md(), 0.05);
  EXPECT_GT(m.p_suc_nontardy(), 0.8);
}

TEST(SystemTest, ValueAccumulatesOnlyFromCommits) {
  Config config = ShortBaseline();
  const RunMetrics m = RunSystem(config);
  EXPECT_GT(m.value_committed, 0.0);
  // Mean value is 1.5; committed value can't exceed ~3 sd outliers.
  EXPECT_LT(m.value_committed,
            static_cast<double>(m.txns_committed) * 4.0);
}

TEST(SystemTest, PViewShiftsWorkBeforeReads) {
  // With p_view = 1 every stale read is discovered at the very end;
  // with aborts the wasted work shows up as lower AV.
  Config config = ShortBaseline(60.0);
  config.policy = PolicyKind::kTransactionFirst;
  config.abort_on_stale = true;
  config.lambda_t = 10;
  config.p_view = 0.0;
  const RunMetrics early = RunSystem(config);
  config.p_view = 1.0;
  const RunMetrics late = RunSystem(config);
  EXPECT_LT(late.av(), early.av());
}

TEST(SystemSchedTest, EdfRunsAndConserves) {
  Config config = ShortBaseline();
  config.txn_sched = txn::TxnSchedPolicy::kEarliestDeadline;
  config.lambda_t = 15;
  const RunMetrics m = RunSystem(config);
  EXPECT_EQ(m.txns_arrived,
            m.txns_committed + m.txns_missed_deadline + m.txns_infeasible +
                m.txns_stale_aborted + m.txns_inflight_at_end);
  EXPECT_GT(m.txns_committed, 0u);
}

TEST(SystemSchedTest, ValueDensityEarnsMoreThanFcfsUnderOverload) {
  // FCFS ignores value entirely; the paper's value-density rule should
  // cash in more of the offered value when overloaded.
  Config config = ShortBaseline(60.0);
  config.lambda_t = 25;
  config.txn_sched = txn::TxnSchedPolicy::kValueDensity;
  const RunMetrics vd = RunSystem(config);
  config.txn_sched = txn::TxnSchedPolicy::kFcfs;
  const RunMetrics fcfs = RunSystem(config);
  EXPECT_GT(vd.av(), fcfs.av());
}

TEST(SystemTriggerTest, TriggersConsumeUpdateCpu) {
  Config config = ShortBaseline(40.0);
  config.policy = PolicyKind::kUpdateFirst;
  config.trigger_probability = 0.5;
  config.x_trigger = 20000;  // doubles the write cost when it fires
  const RunMetrics with_triggers = RunSystem(config);
  config.trigger_probability = 0.0;
  const RunMetrics without = RunSystem(config);
  EXPECT_GT(with_triggers.triggers_fired, 0u);
  EXPECT_EQ(without.triggers_fired, 0u);
  EXPECT_GT(with_triggers.rho_u(), without.rho_u() + 0.05);
}

TEST(SystemTriggerTest, TriggerRateMatchesProbability) {
  Config config = ShortBaseline(40.0);
  config.policy = PolicyKind::kUpdateFirst;
  config.trigger_probability = 0.25;
  config.x_trigger = 1000;
  const RunMetrics m = RunSystem(config);
  const double rate = static_cast<double>(m.triggers_fired) /
                      static_cast<double>(m.updates_installed);
  EXPECT_NEAR(rate, 0.25, 0.03);
}

TEST(SystemDiskTest, MainMemoryBaselineNeverStalls) {
  Config config = ShortBaseline();
  const RunMetrics m = RunSystem(config);
  EXPECT_EQ(m.io_stalls, 0u);
}

TEST(SystemDiskTest, BufferMissesStallAndAreCounted) {
  Config config = ShortBaseline(40.0);
  config.policy = PolicyKind::kUpdateFirst;
  config.buffer_hit_ratio = 0.8;
  config.io_seconds = 0.0005;
  const RunMetrics m = RunSystem(config);
  EXPECT_GT(m.io_stalls, 0u);
  // Roughly one lookup per install plus two per transaction; 20% miss.
  const double lookups = static_cast<double>(m.updates_installed) +
                         static_cast<double>(m.updates_unworthy);
  EXPECT_GT(static_cast<double>(m.io_stalls), 0.1 * lookups);
  // Stall time inflates the update share of the CPU.
  config.buffer_hit_ratio = 1.0;
  const RunMetrics mem = RunSystem(config);
  EXPECT_GT(m.rho_u(), mem.rho_u() + 0.02);
}

TEST(SystemResponseTimeTest, QuantilesAreOrderedAndBounded) {
  Config config = ShortBaseline(60.0);
  config.lambda_t = 10;
  const RunMetrics m = RunSystem(config);
  EXPECT_GT(m.response_mean, 0.0);
  EXPECT_LE(m.response_p50, m.response_p95);
  EXPECT_LE(m.response_p95, m.response_p99);
  // A committed transaction's response is at most execution + slack;
  // the baseline bounds that by roughly 1.3 s.
  EXPECT_LT(m.response_p99, 1.5);
  // And it is at least the minimum execution time (~0.09 s).
  EXPECT_GT(m.response_p50, 0.05);
}

TEST(SystemResponseTimeTest, LoadStretchesResponseTimes) {
  Config config = ShortBaseline(60.0);
  config.lambda_t = 2;
  const RunMetrics light = RunSystem(config);
  config.lambda_t = 20;
  const RunMetrics heavy = RunSystem(config);
  EXPECT_GT(heavy.response_p95, light.response_p95);
}

TEST(SystemStalenessCriterionTest, ArrivalMaIsFresherThanGenerationMa) {
  // arrival >= generation, so values age out strictly later under the
  // arrival-based criterion.
  Config config = ShortBaseline(60.0);
  config.policy = PolicyKind::kUpdateFirst;
  config.staleness = db::StalenessCriterion::kMaxAge;
  const RunMetrics generation = RunSystem(config);
  config.staleness = db::StalenessCriterion::kMaxAgeArrival;
  const RunMetrics arrival = RunSystem(config);
  EXPECT_LT(arrival.f_old_low, generation.f_old_low);
}

TEST(SystemStalenessCriterionTest, CombinedIsStalestOfAll) {
  Config config = ShortBaseline(40.0);
  config.policy = PolicyKind::kTransactionFirst;
  config.lambda_t = 10;
  config.staleness = db::StalenessCriterion::kMaxAge;
  const RunMetrics ma = RunSystem(config);
  config.staleness = db::StalenessCriterion::kUnappliedUpdate;
  const RunMetrics uu = RunSystem(config);
  config.staleness = db::StalenessCriterion::kCombined;
  const RunMetrics combined = RunSystem(config);
  EXPECT_GE(combined.f_old_low, ma.f_old_low - 0.02);
  EXPECT_GE(combined.f_old_low, uu.f_old_low - 0.02);
}

TEST(SystemHistoryTest, DisabledByDefault) {
  Config config = ShortBaseline(5.0);
  sim::Simulator simulator;
  System system(&simulator, config, base::RngSeed(1));
  system.Run();
  EXPECT_EQ(system.history(), nullptr);
}

TEST(SystemHistoryTest, RecordsEveryInstall) {
  Config config = ShortBaseline(10.0);
  config.policy = PolicyKind::kUpdateFirst;
  config.history_depth = 4;
  sim::Simulator simulator;
  System system(&simulator, config, base::RngSeed(1));
  const RunMetrics m = system.Run();
  ASSERT_NE(system.history(), nullptr);
  EXPECT_EQ(system.history()->recorded(), m.updates_installed);
  // With 400 installs/s over 1000 objects, most objects have a full
  // ring by t = 10.
  int with_history = 0;
  for (int i = 0; i < config.n_low; ++i) {
    if (system.history()->VersionCount(
            {db::ObjectClass::kLowImportance, i}) > 0) {
      ++with_history;
    }
  }
  EXPECT_GT(with_history, config.n_low / 2);
}

TEST(SystemHistoryTest, AsOfReturnsPastVersions) {
  Config config = ShortBaseline(20.0);
  config.policy = PolicyKind::kUpdateFirst;
  config.history_depth = 8;
  sim::Simulator simulator;
  System system(&simulator, config, base::RngSeed(1));
  system.Run();
  // Find an object with several versions and check as-of ordering.
  for (int i = 0; i < config.n_low; ++i) {
    const db::ObjectId id{db::ObjectClass::kLowImportance, i};
    const auto versions = system.history()->History(id);
    if (versions.size() < 3) continue;
    const auto as_of =
        system.history()->AsOf(id, versions[1].generation_time);
    ASSERT_TRUE(as_of.has_value());
    EXPECT_EQ(*as_of, versions[1]);
    return;
  }
  FAIL() << "no object accumulated 3 versions";
}

TEST(SystemPartialUpdateTest, RunsAndConserves) {
  Config config = ShortBaseline();
  config.n_attributes = 4;
  config.lambda_t = 10;
  const RunMetrics m = RunSystem(config);
  EXPECT_EQ(m.txns_arrived,
            m.txns_committed + m.txns_missed_deadline + m.txns_infeasible +
                m.txns_stale_aborted + m.txns_inflight_at_end);
  EXPECT_GT(m.updates_installed, 0u);
}

TEST(SystemPartialUpdateTest, PartialUpdatesIncreaseStaleness) {
  // An object is only as fresh as its oldest attribute: with A
  // attributes refreshed independently, the refresh period per
  // attribute grows A-fold and staleness rises even under UF.
  Config config = ShortBaseline(60.0);
  config.policy = PolicyKind::kUpdateFirst;
  config.n_attributes = 1;
  const RunMetrics complete = RunSystem(config);
  config.n_attributes = 4;
  const RunMetrics partial = RunSystem(config);
  EXPECT_GT(partial.f_old_low, complete.f_old_low + 0.1);
  EXPECT_GT(partial.f_old_high, complete.f_old_high + 0.1);
}

TEST(SystemAdmissionTest, LimitDropsArrivalsUnderOverload) {
  Config config = ShortBaseline();
  config.lambda_t = 25;
  config.admission_limit = 2;
  const RunMetrics m = RunSystem(config);
  EXPECT_GT(m.txns_overload_dropped, 0u);
  EXPECT_EQ(m.txns_arrived, m.txns_terminal() + m.txns_inflight_at_end);
}

TEST(SystemAdmissionTest, UnlimitedByDefault) {
  Config config = ShortBaseline();
  config.lambda_t = 25;
  const RunMetrics m = RunSystem(config);
  EXPECT_EQ(m.txns_overload_dropped, 0u);
}

TEST(SystemAdmissionTest, TightLimitCutsResponseTimes) {
  // Admission control trades arrivals for latency: what is admitted
  // waits behind at most `limit` predecessors.
  Config config = ShortBaseline(60.0);
  config.lambda_t = 25;
  config.feasible_deadline = false;  // isolate the admission effect
  const RunMetrics open = RunSystem(config);
  config.admission_limit = 2;
  const RunMetrics limited = RunSystem(config);
  EXPECT_LT(limited.response_p95, open.response_p95);
}

TEST(SystemBurstyTest, RunsAndConserves) {
  Config config = ShortBaseline(40.0);
  config.bursty_updates = true;
  config.lambda_u = 300;
  config.lambda_u_peak = 600;
  const RunMetrics m = RunSystem(config);
  EXPECT_GT(m.updates_arrived, 0u);
  EXPECT_EQ(m.txns_arrived, m.txns_terminal() + m.txns_inflight_at_end);
}

TEST(SystemBurstyTest, MeanRateBetweenNormalAndPeak) {
  Config config = ShortBaseline(120.0);
  config.policy = PolicyKind::kUpdateFirst;
  config.bursty_updates = true;
  config.lambda_u = 200;
  config.lambda_u_peak = 600;
  config.normal_dwell_seconds = 10;
  config.burst_dwell_seconds = 10;
  const RunMetrics m = RunSystem(config);
  const double rate =
      static_cast<double>(m.updates_arrived) / m.observed_seconds;
  EXPECT_GT(rate, 250.0);
  EXPECT_LT(rate, 550.0);
}

TEST(SystemDedupTest, BoundsQueueAtOnePerObject) {
  Config config = ShortBaseline(40.0);
  config.policy = PolicyKind::kTransactionFirst;
  config.lambda_t = 20;  // overload: queue would otherwise hold ~2800
  config.dedup_update_queue = true;
  const RunMetrics m = RunSystem(config);
  EXPECT_LE(m.uq_length_max,
            static_cast<std::uint64_t>(config.n_low + config.n_high));
  EXPECT_GT(m.updates_dropped_superseded, 0u);
}

TEST(SystemDedupTest, PreservesStalenessAndOdBehaviour) {
  // Dropping superseded updates loses nothing: the newest per object
  // is retained, so staleness and OD rescues are unchanged (to noise).
  Config config = ShortBaseline(60.0);
  config.policy = PolicyKind::kOnDemand;
  config.lambda_t = 15;
  const RunMetrics plain = RunSystem(config);
  config.dedup_update_queue = true;
  const RunMetrics dedup = RunSystem(config);
  EXPECT_NEAR(dedup.f_old_low, plain.f_old_low, 0.05);
  EXPECT_NEAR(dedup.p_success(), plain.p_success(), 0.05);
}

TEST(SystemDedupTest, ShrinksOdScanCost) {
  // The bounded queue is the paper's remedy for expensive scans: the
  // same x_scan hurts far less when N_q is capped near N instead of
  // alpha * lambda_u.
  Config config = ShortBaseline(60.0);
  config.policy = PolicyKind::kOnDemand;
  config.lambda_t = 10;
  config.x_scan = 2000;
  const RunMetrics plain = RunSystem(config);
  config.dedup_update_queue = true;
  const RunMetrics dedup = RunSystem(config);
  EXPECT_GT(dedup.av(), plain.av());
  EXPECT_LT(dedup.uq_length_avg, plain.uq_length_avg);
}

TEST(SystemDedupTest, ConservationStillHolds) {
  Config config = ShortBaseline(25.0);
  config.policy = PolicyKind::kTransactionFirst;
  config.lambda_t = 15;
  config.dedup_update_queue = true;
  sim::Simulator simulator;
  System system(&simulator, config, base::RngSeed(1));
  const RunMetrics m = system.Run();
  const std::uint64_t accounted =
      m.updates_dropped_os_full + m.updates_dropped_uq_overflow +
      m.updates_dropped_expired + m.updates_dropped_superseded +
      m.updates_installed + m.updates_unworthy + system.os_queue().size() +
      system.update_queue().size();
  EXPECT_GE(m.updates_arrived, accounted);
  EXPECT_LE(m.updates_arrived, accounted + 1);
}

TEST(SystemDeathTest, InvalidConfigDiesAtConstruction) {
  sim::Simulator simulator;
  Config config;
  config.lambda_t = 0;
  EXPECT_DEATH(System(&simulator, config, base::RngSeed(1)), "positive");
}

TEST(SystemDeathTest, RunTwiceDies) {
  sim::Simulator simulator;
  Config config = ShortBaseline(5.0);
  System system(&simulator, config, base::RngSeed(1));
  system.Run();
  EXPECT_DEATH(system.Run(), "twice");
}

}  // namespace
}  // namespace strip::core
