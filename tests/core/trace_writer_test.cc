#include "core/trace_writer.h"

#include <memory>
#include <sstream>

#include <gtest/gtest.h>

#include "core/system.h"
#include "sim/simulator.h"

namespace strip::core {
namespace {

std::unique_ptr<txn::Transaction> MakeTxn(txn::TxnOutcome outcome,
                                          int stale_reads) {
  txn::Transaction::Params p;
  p.id = base::TxnId(42);
  p.cls = txn::TxnClass::kHighValue;
  p.value = 2.5;
  p.arrival_time = 1.0;
  p.deadline = 2.0;
  p.computation_instructions = 1000;
  auto t = std::make_unique<txn::Transaction>(p);
  t->set_outcome(outcome);
  for (int i = 0; i < stale_reads; ++i) t->MarkStaleRead();
  return t;
}

db::Update MakeUpdate() {
  db::Update u;
  u.id = base::UpdateId(7);
  u.object = {db::ObjectClass::kLowImportance, 3};
  u.generation_time = 1.5;
  return u;
}

TEST(DropReasonTest, Names) {
  EXPECT_STREQ(DropReasonName(SystemObserver::DropReason::kOsQueueFull),
               "os-full");
  EXPECT_STREQ(DropReasonName(SystemObserver::DropReason::kQueueOverflow),
               "queue-overflow");
  EXPECT_STREQ(DropReasonName(SystemObserver::DropReason::kExpired),
               "expired");
  EXPECT_STREQ(DropReasonName(SystemObserver::DropReason::kUnworthy),
               "unworthy");
}

TEST(TraceWriterTest, WritesHeader) {
  std::ostringstream out;
  TraceWriter writer(&out);
  EXPECT_NE(out.str().find("record,time,id"), std::string::npos);
  EXPECT_EQ(writer.records_written(), 0u);
}

TEST(TraceWriterTest, TransactionRecordFormat) {
  std::ostringstream out;
  TraceWriter writer(&out);
  const auto t = MakeTxn(txn::TxnOutcome::kStaleAbort, 2);
  writer.OnTransactionTerminal(1.75, *t);
  EXPECT_NE(out.str().find("txn,1.75,42,high,2.5,1,2,stale-abort,2"),
            std::string::npos);
  EXPECT_EQ(writer.records_written(), 1u);
}

TEST(TraceWriterTest, UpdatesOffByDefault) {
  std::ostringstream out;
  TraceWriter writer(&out);
  writer.OnUpdateInstalled(2.0, MakeUpdate(), nullptr);
  writer.OnUpdateDropped(2.0, MakeUpdate(),
                         SystemObserver::DropReason::kExpired);
  EXPECT_EQ(writer.records_written(), 0u);
}

TEST(TraceWriterTest, UpdateRecordsWhenEnabled) {
  std::ostringstream out;
  TraceWriter::Options options;
  options.updates = true;
  TraceWriter writer(&out, options);
  const auto demander = MakeTxn(txn::TxnOutcome::kCommitted, 0);
  writer.OnUpdateInstalled(2.0, MakeUpdate(), nullptr);
  writer.OnUpdateInstalled(2.5, MakeUpdate(), demander.get());
  writer.OnUpdateDropped(3.0, MakeUpdate(),
                         SystemObserver::DropReason::kExpired);
  const std::string s = out.str();
  EXPECT_NE(s.find("update,2,7,low,3,1.5,installed"), std::string::npos);
  EXPECT_NE(s.find("installed-od"), std::string::npos);
  EXPECT_NE(s.find("expired"), std::string::npos);
  EXPECT_EQ(writer.records_written(), 3u);
}

TEST(TraceWriterTest, StaleReadAndPhaseRows) {
  std::ostringstream out;
  TraceWriter writer(&out);
  const auto t = MakeTxn(txn::TxnOutcome::kCommitted, 0);
  writer.OnStaleRead(1.25, *t, {db::ObjectClass::kLowImportance, 9});
  writer.OnPhase(2.0, SystemObserver::Phase::kWarmupEnd);
  const std::string s = out.str();
  EXPECT_NE(s.find("stale,1.25,42,high,low,9,,,"), std::string::npos);
  EXPECT_NE(s.find("phase,2,,,warmup_end,,,,"), std::string::npos);
  EXPECT_EQ(writer.records_written(), 2u);
}

TEST(TraceWriterTest, StaleAndPhaseRowsCanBeDisabled) {
  std::ostringstream out;
  TraceWriter::Options options;
  options.stale_reads = false;
  options.phases = false;
  TraceWriter writer(&out, options);
  const auto t = MakeTxn(txn::TxnOutcome::kCommitted, 0);
  writer.OnStaleRead(1.25, *t, {db::ObjectClass::kLowImportance, 9});
  writer.OnPhase(2.0, SystemObserver::Phase::kWarmupEnd);
  EXPECT_EQ(writer.records_written(), 0u);
}

TEST(TraceWriterTest, TransactionsCanBeDisabled) {
  std::ostringstream out;
  TraceWriter::Options options;
  options.transactions = false;
  TraceWriter writer(&out, options);
  writer.OnTransactionTerminal(1.0,
                               *MakeTxn(txn::TxnOutcome::kCommitted, 0));
  EXPECT_EQ(writer.records_written(), 0u);
}

// End-to-end: attach to a real System and check the trace is
// consistent with the metrics.
TEST(TraceWriterTest, SystemIntegrationCountsMatchMetrics) {
  Config config;
  config.sim_seconds = 20.0;
  config.lambda_t = 15;
  std::ostringstream out;
  TraceWriter::Options options;
  options.transactions = true;
  options.updates = true;
  TraceWriter writer(&out, options);

  sim::Simulator simulator;
  System system(&simulator, config, base::RngSeed(3));
  system.AddObserver(&writer);
  const RunMetrics m = system.Run();

  // One txn record per terminal transaction.
  std::size_t txn_records = 0;
  std::size_t committed_records = 0;
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("txn,", 0) == 0) {
      ++txn_records;
      if (line.find(",committed,") != std::string::npos) {
        ++committed_records;
      }
    }
  }
  EXPECT_EQ(txn_records, m.txns_terminal());
  EXPECT_EQ(committed_records, m.txns_committed);
}

TEST(TraceWriterDeathTest, NullStreamDies) {
  EXPECT_DEATH(TraceWriter(nullptr), "");
}

}  // namespace
}  // namespace strip::core
