// Fixture companion header: the unordered member is declared HERE; the
// loop over it lives in det_unordered_iter_companion.cc. The linter
// must seed the name set from this header to catch that loop.
#include <string>
#include <unordered_map>

struct Registry {
  std::unordered_map<std::string, int> by_name_;
  int Sum() const;
};
