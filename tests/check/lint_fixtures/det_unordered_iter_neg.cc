// Fixture: ordered containers and sorted-copy loops are legal.
#include <map>
#include <unordered_map>
#include <vector>

struct Census {
  std::unordered_map<int, int> counts_;
  std::map<int, int> ordered_;
  std::vector<int> rows_;

  int Sum() const {
    int total = 0;
    for (const auto& kv : ordered_) {  // std::map iterates sorted
      total += kv.second;
    }
    for (int row : rows_) {  // vector order is insertion order
      total += row;
    }
    for (const auto& kv : SortedCopy(counts_)) {  // call materializes order
      total += kv.second;
    }
    return total;
  }
};
