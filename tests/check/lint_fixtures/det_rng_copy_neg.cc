// Fixture: references and Fork()ed children are the legal shapes.
#include "sim/random.h"

using strip::sim::RandomStream;

double DrawTwice(RandomStream& rng) { return rng.Uniform() + rng.Uniform(); }

double Observe(const RandomStream& rng) { return rng.Peek(); }

double Run(RandomStream& parent) {
  RandomStream child(parent.Fork());  // independent child stream
  return DrawTwice(child);
}
