// Fixture: integer compares and epsilon compares are legal.
#include <cmath>

bool Check(int count, double x) {
  if (count == 1) return true;               // integer literal
  if (count != 0x10) return false;           // hex integer
  return std::fabs(x - 1.0) < 1e-9;          // epsilon compare, no ==
}
