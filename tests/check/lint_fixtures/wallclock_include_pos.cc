// Fixture (src/-only rule): every banned wall-clock header.
#include <chrono>
#include <ctime>
#include <sys/time.h>
#include <time.h>

int Unused() { return 0; }
