// Fixture: ordinary headers, and banned ones only in comments or
// strings, are legal. Do not include <chrono> here — and that mention
// must not count.
#include <string>
#include <vector>

const char* Doc() { return "#include <ctime> would be flagged"; }
