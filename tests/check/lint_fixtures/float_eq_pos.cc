// Fixture (src/-only rule): exact-bit compares against float literals.

bool AtUnity(double cpu_factor, float ratio) {
  if (cpu_factor == 1.0) return true;   // lhs variable, rhs float literal
  if (0.5f != ratio) return false;      // lhs float literal
  if (ratio == 1e-3) return false;      // exponent form
  return ratio == 0x1p-4;               // hex-float form
}
