// Fixture: hardware entropy must be flagged wherever it appears.
#include <random>

unsigned Seed() {
  std::random_device entropy;
  return entropy();
}
