// Fixture: every libc random-family call shape must be flagged.
#include <cstdlib>

int Draw() {
  srand(42);
  int a = rand() % 6;
  double b = drand48();
  long c = random();
  return a + static_cast<int>(b) + static_cast<int>(c);
}
