// Fixture: none of these uses of "rand" is the libc call.
// A comment saying rand() or srand() must not trip the lexer-backed
// rules the way it tripped the old grep.

int Draw(const Dice& dice, int bound) {
  const char* doc = "call rand() never";  // string contents stripped
  int a = mylib::rand(bound);             // qualified away
  int b = dice.rand();                    // member access
  int c = this->rand();                   // member access via pointer
  RandomStream random(7);                 // declaration, not random()
  return a + b + c + doc[0] + random.UniformInt(1, 6);
}
