// Fixture: both loop shapes over a locally-declared unordered
// container must be flagged.
#include <unordered_map>
#include <unordered_set>

struct Census {
  std::unordered_map<int, int> counts_;
  std::unordered_set<long> seen_;

  int Sum() const {
    int total = 0;
    for (const auto& kv : counts_) {  // range-for over unordered member
      total += kv.second;
    }
    for (auto it = seen_.begin(); it != seen_.end(); ++it) {  // iterator walk
      total += static_cast<int>(*it);
    }
    return total;
  }
};
