// Fixture: simulated time and near-miss shapes are not wall-clock
// reads. system_clock::now() in this comment must not count.

double Now(const Simulator& simulator, int shard) {
  double t = simulator.time();       // member access, simulated clock
  double u = clock.time(shard);      // time(...) but not time(nullptr)
  const char* doc = "time(nullptr)"; // string contents stripped
  return t + u + doc[0];
}
