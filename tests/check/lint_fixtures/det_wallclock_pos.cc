// Fixture: all three wall-clock read shapes must be flagged.
#include <chrono>
#include <ctime>
#include <sys/time.h>

long Now() {
  auto a = std::chrono::system_clock::now();
  auto b = std::chrono::steady_clock::now();
  std::time_t c = time(nullptr);
  struct timeval tv;
  gettimeofday(&tv, nullptr);
  (void)a;
  (void)b;
  return static_cast<long>(c) + tv.tv_sec;
}
