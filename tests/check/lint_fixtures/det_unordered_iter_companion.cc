// Fixture: iterates a member whose unordered declaration is only in
// the companion header — flagged only when the header is supplied via
// LintOptions::companion_sources.
#include "det_unordered_iter_companion.h"

int Registry::Sum() const {
  int total = 0;
  for (const auto& kv : by_name_) {
    total += kv.second;
  }
  return total;
}
