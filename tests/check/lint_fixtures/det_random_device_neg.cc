// Fixture: random_device mentioned in comments, strings, or foreign
// namespaces is not std::random_device.

int Seed() {
  const char* hint = "std::random_device is banned here";
  fake::random_device stub;  // foreign namespace, qualified away
  (void)stub;
  return hint[0];
}
