// Fixture: both RandomStream copy shapes must be flagged.
#include "sim/random.h"

using strip::sim::RandomStream;

// By-value parameter: the callee replays the caller's stream.
double DrawTwice(RandomStream rng) { return rng.Uniform() + rng.Uniform(); }

double Run(RandomStream& parent) {
  RandomStream sibling = parent;  // copy-init: both replay the same draws
  return sibling.Uniform();
}
