// The invariant auditor itself, two ways:
//
//  - *seeded violations*: the hooks are driven directly with fabricated
//    invalid event sequences (no System attached — deep cross-checks
//    are skipped, the protocol checks are not) and the auditor must
//    trip the right invariant with a context dump;
//  - *real runs*: attached to a live System across every policy,
//    staleness criterion, and a fault-heavy configuration, the auditor
//    must stay silent — the simulation core actually maintains the
//    model invariants the paper's figures assume.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "check/invariant_auditor.h"
#include "core/system.h"
#include "sim/simulator.h"

namespace strip::check {
namespace {

using core::SystemObserver;
using DispatchInfo = SystemObserver::DispatchInfo;
using DispatchKind = SystemObserver::DispatchKind;
using DropReason = SystemObserver::DropReason;
using Phase = SystemObserver::Phase;
using PreemptReason = SystemObserver::PreemptReason;

db::Update MakeUpdate(std::uint64_t id, int index = 0,
                      double generation = 0.0) {
  db::Update update;
  update.id = base::UpdateId(id);
  update.object = db::ObjectId{db::ObjectClass::kLowImportance, index};
  update.generation_time = generation;
  update.arrival_time = generation;
  return update;
}

std::unique_ptr<txn::Transaction> MakeTxn(std::uint64_t id) {
  txn::Transaction::Params params;
  params.id = base::TxnId(id);
  params.value = 1.0;
  params.deadline = 100.0;
  params.computation_instructions = 1000.0;
  return std::make_unique<txn::Transaction>(params);
}

// True if any recorded violation carries the invariant token.
bool Tripped(const InvariantAuditor& auditor, const std::string& token) {
  for (const auto& v : auditor.violations()) {
    if (v.invariant == token) return true;
  }
  return false;
}

// --- seeded violations -------------------------------------------------------

TEST(AuditorSeededTest, CleanSequenceStaysClean) {
  InvariantAuditor auditor;
  auto txn = MakeTxn(7);
  auditor.OnTxnAdmitted(1.0, *txn);
  auditor.OnUpdateArrival(1.5, MakeUpdate(1, 0, 1.5));
  DispatchInfo d;
  d.kind = DispatchKind::kTxnCompute;
  d.transaction = txn.get();
  d.instructions = 100;
  auditor.OnDispatch(2.0, d);
  auditor.OnSegmentComplete(3.0, d);
  txn->set_outcome(txn::TxnOutcome::kCommitted);
  auditor.OnTransactionTerminal(3.0, *txn);
  EXPECT_TRUE(auditor.ok()) << auditor.Report();
  EXPECT_EQ(auditor.txns_admitted(), 1u);
  EXPECT_EQ(auditor.txns_terminal(), 1u);
  EXPECT_EQ(auditor.updates_arrived(db::ObjectClass::kLowImportance), 1u);
}

TEST(AuditorSeededTest, ClockRegressionTrips) {
  InvariantAuditor auditor;
  auditor.OnUpdateArrival(5.0, MakeUpdate(1));
  auditor.OnUpdateArrival(3.0, MakeUpdate(2));
  EXPECT_FALSE(auditor.ok());
  EXPECT_TRUE(Tripped(auditor, "event-clock"));
}

TEST(AuditorSeededTest, NonFiniteTimeTrips) {
  InvariantAuditor auditor;
  auditor.OnUpdateArrival(-1.0, MakeUpdate(1));
  EXPECT_TRUE(Tripped(auditor, "event-clock"));
}

TEST(AuditorSeededTest, EventAfterRunEndTrips) {
  InvariantAuditor auditor;
  auditor.OnPhase(10.0, Phase::kRunEnd);
  auditor.OnUpdateArrival(10.0, MakeUpdate(1));
  EXPECT_TRUE(Tripped(auditor, "event-clock"));
}

TEST(AuditorSeededTest, DoubleDispatchTrips) {
  InvariantAuditor auditor;
  auto txn = MakeTxn(1);
  auditor.OnTxnAdmitted(0.0, *txn);
  DispatchInfo d;
  d.kind = DispatchKind::kTxnCompute;
  d.transaction = txn.get();
  auditor.OnDispatch(1.0, d);
  auditor.OnDispatch(2.0, d);  // the first span never closed
  EXPECT_TRUE(Tripped(auditor, "dispatch-span"));
}

TEST(AuditorSeededTest, CompleteWithoutDispatchTrips) {
  InvariantAuditor auditor;
  auto txn = MakeTxn(1);
  auditor.OnTxnAdmitted(0.0, *txn);
  DispatchInfo d;
  d.kind = DispatchKind::kTxnCompute;
  d.transaction = txn.get();
  auditor.OnSegmentComplete(1.0, d);
  EXPECT_TRUE(Tripped(auditor, "dispatch-span"));
}

TEST(AuditorSeededTest, CompleteKindMismatchTrips) {
  InvariantAuditor auditor;
  auto txn = MakeTxn(1);
  auditor.OnTxnAdmitted(0.0, *txn);
  DispatchInfo d;
  d.kind = DispatchKind::kTxnCompute;
  d.transaction = txn.get();
  auditor.OnDispatch(1.0, d);
  DispatchInfo e = d;
  e.kind = DispatchKind::kTxnViewRead;
  auditor.OnSegmentComplete(2.0, e);
  EXPECT_TRUE(Tripped(auditor, "dispatch-span"));
}

TEST(AuditorSeededTest, MalformedDispatchInfoTrips) {
  InvariantAuditor auditor;
  // A transaction kind carrying no transaction.
  DispatchInfo d;
  d.kind = DispatchKind::kTxnCompute;
  auditor.OnDispatch(1.0, d);
  EXPECT_TRUE(Tripped(auditor, "dispatch-span"));
}

TEST(AuditorSeededTest, PreemptOwnerMismatchTrips) {
  InvariantAuditor auditor;
  auto a = MakeTxn(1);
  auto b = MakeTxn(2);
  auditor.OnTxnAdmitted(0.0, *a);
  auditor.OnTxnAdmitted(0.0, *b);
  DispatchInfo d;
  d.kind = DispatchKind::kTxnCompute;
  d.transaction = a.get();
  auditor.OnDispatch(1.0, d);
  auditor.OnPreempt(2.0, *b, PreemptReason::kUpdateArrival);
  EXPECT_TRUE(Tripped(auditor, "dispatch-span"));
}

TEST(AuditorSeededTest, DoubleAdmissionTrips) {
  InvariantAuditor auditor;
  auto txn = MakeTxn(1);
  auditor.OnTxnAdmitted(0.0, *txn);
  auditor.OnTxnAdmitted(1.0, *txn);
  EXPECT_TRUE(Tripped(auditor, "txn-lifecycle"));
}

TEST(AuditorSeededTest, TerminalWithoutAdmissionTrips) {
  InvariantAuditor auditor;
  auto txn = MakeTxn(1);
  txn->set_outcome(txn::TxnOutcome::kCommitted);
  auditor.OnTransactionTerminal(1.0, *txn);
  EXPECT_TRUE(Tripped(auditor, "txn-lifecycle"));
}

TEST(AuditorSeededTest, OverloadDropWithoutAdmissionIsLegal) {
  // Admission control rejects at the door; the terminal hook is the
  // only trace those transactions leave.
  InvariantAuditor auditor;
  auto txn = MakeTxn(1);
  txn->set_outcome(txn::TxnOutcome::kOverloadDrop);
  auditor.OnTransactionTerminal(1.0, *txn);
  EXPECT_TRUE(auditor.ok()) << auditor.Report();
}

TEST(AuditorSeededTest, TerminalWithPendingOutcomeTrips) {
  InvariantAuditor auditor;
  auto txn = MakeTxn(1);
  auditor.OnTxnAdmitted(0.0, *txn);
  auditor.OnTransactionTerminal(1.0, *txn);  // outcome still kPending
  EXPECT_TRUE(Tripped(auditor, "txn-lifecycle"));
}

TEST(AuditorSeededTest, DuplicateArrivalTrips) {
  InvariantAuditor auditor;
  auditor.OnUpdateArrival(1.0, MakeUpdate(1));
  auditor.OnUpdateArrival(2.0, MakeUpdate(1));
  EXPECT_TRUE(Tripped(auditor, "update-lifecycle"));
}

TEST(AuditorSeededTest, EnqueueWithoutArrivalTrips) {
  InvariantAuditor auditor;
  auditor.OnUpdateEnqueued(1.0, MakeUpdate(1));
  EXPECT_TRUE(Tripped(auditor, "update-lifecycle"));
}

TEST(AuditorSeededTest, EnqueueStraightFromOsQueueTrips) {
  // An update must cross the CPU (a transfer segment) to reach the
  // update queue; teleporting from the kernel buffer is a model bug.
  InvariantAuditor auditor;
  auditor.OnUpdateArrival(1.0, MakeUpdate(1));
  auditor.OnUpdateEnqueued(2.0, MakeUpdate(1));
  EXPECT_TRUE(Tripped(auditor, "update-lifecycle"));
}

TEST(AuditorSeededTest, InstallOfUnknownUpdateTrips) {
  InvariantAuditor auditor;
  auditor.OnUpdateInstalled(1.0, MakeUpdate(9), nullptr);
  EXPECT_TRUE(Tripped(auditor, "update-lifecycle"));
}

TEST(AuditorSeededTest, DropReasonIllegalForStateTrips) {
  // kOsQueueFull claims the update never left the kernel buffer, but
  // this one is already on the CPU.
  InvariantAuditor auditor;
  const db::Update update = MakeUpdate(1);
  auditor.OnUpdateArrival(1.0, update);
  DispatchInfo d;
  d.kind = DispatchKind::kUpdaterTransfer;
  d.update = &update;
  auditor.OnDispatch(2.0, d);
  auditor.OnUpdateDropped(2.5, update, DropReason::kOsQueueFull);
  EXPECT_TRUE(Tripped(auditor, "update-lifecycle"));
}

TEST(AuditorSeededTest, QueueEvictionPathIsLegal) {
  // arrival -> transfer dispatch -> enqueued -> overflow-evicted is a
  // legal life.
  InvariantAuditor auditor;
  const db::Update update = MakeUpdate(1);
  auditor.OnUpdateArrival(1.0, update);
  DispatchInfo d;
  d.kind = DispatchKind::kUpdaterTransfer;
  d.update = &update;
  auditor.OnDispatch(2.0, d);
  auditor.OnSegmentComplete(2.5, d);
  auditor.OnUpdateEnqueued(2.5, update);
  auditor.OnUpdateDropped(3.0, update, DropReason::kQueueOverflow);
  EXPECT_TRUE(auditor.ok()) << auditor.Report();
  EXPECT_EQ(auditor.updates_dropped(db::ObjectClass::kLowImportance), 1u);
}

TEST(AuditorSeededTest, TwoUpdatesOnCpuTripsConservation) {
  InvariantAuditor auditor;
  const db::Update a = MakeUpdate(1);
  const db::Update b = MakeUpdate(2);
  auditor.OnUpdateArrival(1.0, a);
  auditor.OnUpdateArrival(1.0, b);
  DispatchInfo da;
  da.kind = DispatchKind::kUpdaterTransfer;
  da.update = &a;
  DispatchInfo db_;
  db_.kind = DispatchKind::kUpdaterTransfer;
  db_.update = &b;
  auditor.OnDispatch(2.0, da);
  auditor.OnDispatch(2.5, db_);  // first span never closed
  EXPECT_TRUE(Tripped(auditor, "update-conservation"));
}

TEST(AuditorSeededTest, OdInstallWithoutStaleReadTrips) {
  InvariantAuditor auditor;
  auto txn = MakeTxn(1);
  auditor.OnTxnAdmitted(0.0, *txn);
  const db::Update update = MakeUpdate(1);
  auditor.OnUpdateArrival(1.0, update);
  DispatchInfo d;
  d.kind = DispatchKind::kUpdaterTransfer;
  d.update = &update;
  auditor.OnDispatch(2.0, d);
  auditor.OnSegmentComplete(2.5, d);
  auditor.OnUpdateEnqueued(2.5, update);
  auditor.OnUpdateInstalled(3.0, update, txn.get());
  EXPECT_TRUE(Tripped(auditor, "od-causality"));
}

TEST(AuditorSeededTest, OdInstallAfterStaleReadIsLegal) {
  InvariantAuditor auditor;
  auto txn = MakeTxn(1);
  auditor.OnTxnAdmitted(0.0, *txn);
  const db::Update update = MakeUpdate(1);
  auditor.OnUpdateArrival(1.0, update);
  DispatchInfo d;
  d.kind = DispatchKind::kUpdaterTransfer;
  d.update = &update;
  auditor.OnDispatch(2.0, d);
  auditor.OnSegmentComplete(2.5, d);
  auditor.OnUpdateEnqueued(2.5, update);
  auditor.OnStaleRead(3.0, *txn, update.object);
  auditor.OnUpdateInstalled(3.5, update, txn.get());
  EXPECT_TRUE(auditor.ok()) << auditor.Report();
}

TEST(AuditorSeededTest, OdInstallByDeadTxnTrips) {
  InvariantAuditor auditor;
  auto txn = MakeTxn(1);
  auditor.OnTxnAdmitted(0.0, *txn);
  const db::Update update = MakeUpdate(1);
  auditor.OnUpdateArrival(1.0, update);
  DispatchInfo d;
  d.kind = DispatchKind::kUpdaterTransfer;
  d.update = &update;
  auditor.OnDispatch(2.0, d);
  auditor.OnSegmentComplete(2.5, d);
  auditor.OnUpdateEnqueued(2.5, update);
  auditor.OnStaleRead(3.0, *txn, update.object);
  txn->set_outcome(txn::TxnOutcome::kStaleAbort);
  auditor.OnTransactionTerminal(3.2, *txn);
  auditor.OnUpdateInstalled(3.5, update, txn.get());
  EXPECT_TRUE(Tripped(auditor, "od-causality"));
}

TEST(AuditorSeededTest, FaultWindowEndWithoutBeginTrips) {
  InvariantAuditor auditor;
  SystemObserver::FaultWindowInfo window;
  window.kind = "outage";
  window.label = "outage@10+5";
  window.begin = false;
  window.start = 10;
  window.end = 15;
  auditor.OnFaultWindow(15.0, window);
  EXPECT_TRUE(Tripped(auditor, "fault-bracketing"));
}

TEST(AuditorSeededTest, FaultWindowDoubleBeginTrips) {
  InvariantAuditor auditor;
  SystemObserver::FaultWindowInfo window;
  window.kind = "burst";
  window.label = "burst@1+2";
  window.begin = true;
  window.start = 1;
  window.end = 3;
  auditor.OnFaultWindow(1.0, window);
  auditor.OnFaultWindow(1.5, window);
  EXPECT_TRUE(Tripped(auditor, "fault-bracketing"));
}

TEST(AuditorSeededTest, FaultWindowOffScheduleTrips) {
  InvariantAuditor auditor;
  SystemObserver::FaultWindowInfo window;
  window.kind = "loss";
  window.label = "loss@5+5";
  window.begin = true;
  window.start = 5;
  window.end = 10;
  auditor.OnFaultWindow(7.0, window);  // fires 2s late
  EXPECT_TRUE(Tripped(auditor, "fault-bracketing"));
}

TEST(AuditorSeededTest, WellBracketedFaultWindowIsLegal) {
  InvariantAuditor auditor;
  SystemObserver::FaultWindowInfo window;
  window.kind = "outage";
  window.label = "outage@2+3";
  window.start = 2;
  window.end = 5;
  window.begin = true;
  auditor.OnFaultWindow(2.0, window);
  window.begin = false;
  auditor.OnFaultWindow(5.0, window);
  EXPECT_TRUE(auditor.ok()) << auditor.Report();
}

TEST(AuditorSeededTest, ViolationCarriesContextDump) {
  InvariantAuditor auditor;
  auditor.OnUpdateArrival(1.0, MakeUpdate(1));
  auditor.OnUpdateArrival(2.0, MakeUpdate(2));
  auditor.OnUpdateArrival(1.5, MakeUpdate(3));  // clock regression
  ASSERT_FALSE(auditor.ok());
  const auto& v = auditor.violations().front();
  EXPECT_EQ(v.invariant, "event-clock");
  EXPECT_DOUBLE_EQ(v.time, 1.5);
  // The context dump names the preceding events.
  EXPECT_NE(v.context.find("update-arrival"), std::string::npos);
  EXPECT_NE(v.context.find("id=1"), std::string::npos);
  EXPECT_NE(v.context.find("id=2"), std::string::npos);
  // And the report embeds both message and context.
  const std::string report = auditor.Report();
  EXPECT_NE(report.find("event-clock"), std::string::npos);
  EXPECT_NE(report.find("recent events"), std::string::npos);
}

TEST(AuditorSeededTest, ViolationCapKeepsCounting) {
  InvariantAuditor::Options options;
  options.max_violations = 2;
  InvariantAuditor auditor(options);
  for (int i = 0; i < 5; ++i) {
    auditor.OnUpdateEnqueued(1.0, MakeUpdate(100 + i));  // all unknown
  }
  EXPECT_EQ(auditor.violations().size(), 2u);
  EXPECT_EQ(auditor.total_violations(), 5u);
  EXPECT_NE(auditor.Report().find("further violation"),
            std::string::npos);
}

// --- real runs ---------------------------------------------------------------

core::RunMetrics RunAudited(const core::Config& config, std::uint64_t seed,
                            InvariantAuditor& auditor) {
  sim::Simulator simulator;
  core::System system(&simulator, config, base::RngSeed(seed));
  auditor.set_system(&system);
  system.AddObserver(&auditor);
  return system.Run();
}

TEST(AuditorRealRunTest, EveryPolicyRunsClean) {
  for (core::PolicyKind policy :
       {core::PolicyKind::kUpdateFirst, core::PolicyKind::kTransactionFirst,
        core::PolicyKind::kSplitUpdates, core::PolicyKind::kOnDemand,
        core::PolicyKind::kFixedFraction}) {
    SCOPED_TRACE(core::PolicyKindName(policy));
    core::Config config;
    config.policy = policy;
    config.sim_seconds = 30.0;
    InvariantAuditor auditor;
    RunAudited(config, 11, auditor);
    EXPECT_TRUE(auditor.ok()) << auditor.Report();
    EXPECT_GT(auditor.events_seen(), 0u);
  }
}

TEST(AuditorRealRunTest, EveryStalenessCriterionRunsClean) {
  for (db::StalenessCriterion criterion :
       {db::StalenessCriterion::kMaxAge,
        db::StalenessCriterion::kUnappliedUpdate,
        db::StalenessCriterion::kCombined,
        db::StalenessCriterion::kMaxAgeArrival}) {
    SCOPED_TRACE(db::StalenessCriterionName(criterion));
    core::Config config;
    config.policy = core::PolicyKind::kOnDemand;
    config.staleness = criterion;
    config.sim_seconds = 30.0;
    config.alpha = 0.5;  // tight: plenty of staleness traffic
    InvariantAuditor auditor;
    RunAudited(config, 7, auditor);
    EXPECT_TRUE(auditor.ok()) << auditor.Report();
  }
}

TEST(AuditorRealRunTest, FaultHeavyRunStaysClean) {
  core::Config config;
  config.policy = core::PolicyKind::kOnDemand;
  config.sim_seconds = 60.0;
  config.faults =
      "outage@10+5:speedup=4;burst@30+10:factor=3;loss@20+5:p=0.2;"
      "dup@25+5:p=0.2;reorder@40+5:p=0.3;cpu@45+5:factor=0.5";
  config.shed_by_importance = true;
  config.overload_governor = true;
  config.uq_max = 64;
  InvariantAuditor auditor;
  RunAudited(config, 11, auditor);
  EXPECT_TRUE(auditor.ok()) << auditor.Report();
}

TEST(AuditorRealRunTest, TalliesMatchRunMetrics) {
  core::Config config;
  config.sim_seconds = 30.0;
  InvariantAuditor auditor;
  RunAudited(config, 3, auditor);
  ASSERT_TRUE(auditor.ok()) << auditor.Report();
  // Everything that arrived was resolved or is still queued — and the
  // auditor saw every admission get a terminal (run-end finalizes all).
  EXPECT_GT(auditor.updates_arrived(db::ObjectClass::kLowImportance), 0u);
  EXPECT_GT(auditor.txns_admitted(), 0u);
}

TEST(AuditorRealRunTest, AuditorDoesNotPerturbMetrics) {
  core::Config config;
  config.policy = core::PolicyKind::kOnDemand;
  config.sim_seconds = 30.0;
  config.alpha = 0.5;

  sim::Simulator bare_sim;
  core::System bare(&bare_sim, config, base::RngSeed(5));
  const core::RunMetrics plain = bare.Run();

  InvariantAuditor auditor;
  const core::RunMetrics audited = RunAudited(config, 5, auditor);
  ASSERT_TRUE(auditor.ok()) << auditor.Report();

  EXPECT_EQ(plain.ToString(), audited.ToString());
  EXPECT_EQ(plain.av(), audited.av());
  EXPECT_EQ(plain.p_success(), audited.p_success());
  EXPECT_EQ(plain.f_old_low, audited.f_old_low);
  EXPECT_EQ(plain.f_old_high, audited.f_old_high);
}

}  // namespace
}  // namespace strip::check
