// Tests for the determinism linter (src/check/lint/): the lexer's
// code-only token stream, every rule against its fixture corpus under
// tests/check/lint_fixtures/ (one positive and one negative file per
// rule), and the justified-allowlist parser. The full-tree self-scan
// runs separately as the `lint.selfscan` ctest entry.

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/lint/lexer.h"
#include "check/lint/rules.h"

namespace strip::check::lint {
namespace {

std::string ReadFixture(const std::string& name) {
  const std::string path =
      std::string(STRIP_TEST_SOURCE_DIR) + "/check/lint_fixtures/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  int n = 0;
  for (const Finding& f : findings) {
    if (f.rule == rule) ++n;
  }
  return n;
}

std::vector<Finding> LintFixture(const std::string& name,
                                 bool in_src_tree = false) {
  LintOptions options;
  options.in_src_tree = in_src_tree;
  return LintSource(name, ReadFixture(name), options);
}

// --- lexer ------------------------------------------------------------------

TEST(LintLexerTest, CommentsNeverBecomeTokens) {
  const auto tokens = Lex("int a; // rand() in a comment\n/* srand */ int b;");
  for (const Token& t : tokens) {
    EXPECT_NE(t.text, "rand");
    EXPECT_NE(t.text, "srand");
  }
}

TEST(LintLexerTest, StringAndCharContentsAreStripped) {
  const auto tokens = Lex("const char* s = \"rand()\"; char c = 'r';");
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kString) {
      EXPECT_TRUE(t.text.empty());
    }
    EXPECT_NE(t.text, "rand");
  }
}

TEST(LintLexerTest, RawStringContentsAreStripped) {
  const auto tokens =
      Lex("auto s = R\"(time(nullptr))\"; auto t = uR\"xx(rand())xx\";");
  for (const Token& t : tokens) {
    EXPECT_NE(t.text, "time");
    EXPECT_NE(t.text, "rand");
    EXPECT_NE(t.text, "nullptr");
  }
}

TEST(LintLexerTest, IncludePathIsOneToken) {
  const auto tokens = Lex("#include <chrono>\n#include \"db/object.h\"\n");
  std::vector<std::string> paths;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kIncludePath) paths.push_back(t.text);
  }
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], "<chrono>");
  EXPECT_EQ(paths[1], "\"db/object.h\"");
}

TEST(LintLexerTest, LineAndColumnAreOneBased) {
  const auto tokens = Lex("int a;\n  int b;\n");
  ASSERT_GE(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].col, 1);
  EXPECT_EQ(tokens[3].line, 2);  // second "int"
  EXPECT_EQ(tokens[3].col, 3);
}

TEST(LintLexerTest, UnterminatedConstructsCloseAtEof) {
  // Contract for fuzzing: never crash, never loop.
  EXPECT_NO_FATAL_FAILURE(Lex("\"unterminated"));
  EXPECT_NO_FATAL_FAILURE(Lex("/* unterminated"));
  EXPECT_NO_FATAL_FAILURE(Lex("R\"(unterminated"));
  EXPECT_NO_FATAL_FAILURE(Lex("'"));
}

TEST(LintLexerTest, FloatLiteralClassification) {
  EXPECT_TRUE(IsFloatLiteral("1.0"));
  EXPECT_TRUE(IsFloatLiteral("0.5f"));
  EXPECT_TRUE(IsFloatLiteral("1e-3"));
  EXPECT_TRUE(IsFloatLiteral("0x1p-4"));
  EXPECT_FALSE(IsFloatLiteral("1"));
  EXPECT_FALSE(IsFloatLiteral("0x10"));
  EXPECT_FALSE(IsFloatLiteral("42u"));
}

// --- rules vs. the fixture corpus -------------------------------------------

TEST(LintRulesTest, LibcRandFixtures) {
  // srand, rand, drand48, and zero-arg random() — four call sites.
  EXPECT_EQ(CountRule(LintFixture("det_libc_rand_pos.cc"), "det-libc-rand"),
            4);
  EXPECT_EQ(CountRule(LintFixture("det_libc_rand_neg.cc"), "det-libc-rand"),
            0);
}

TEST(LintRulesTest, RandomDeviceFixtures) {
  EXPECT_GE(CountRule(LintFixture("det_random_device_pos.cc"),
                      "det-random-device"),
            1);
  EXPECT_EQ(CountRule(LintFixture("det_random_device_neg.cc"),
                      "det-random-device"),
            0);
}

TEST(LintRulesTest, WallclockFixtures) {
  // system_clock::now, steady_clock::now, time(nullptr), gettimeofday.
  EXPECT_EQ(CountRule(LintFixture("det_wallclock_pos.cc"), "det-wallclock"),
            4);
  EXPECT_EQ(CountRule(LintFixture("det_wallclock_neg.cc"), "det-wallclock"),
            0);
}

TEST(LintRulesTest, UnorderedIterFixtures) {
  // One range-for and one iterator walk.
  EXPECT_EQ(CountRule(LintFixture("det_unordered_iter_pos.cc"),
                      "det-unordered-iter"),
            2);
  EXPECT_EQ(CountRule(LintFixture("det_unordered_iter_neg.cc"),
                      "det-unordered-iter"),
            0);
}

TEST(LintRulesTest, UnorderedIterSeesCompanionHeaderMembers) {
  const std::string source = ReadFixture("det_unordered_iter_companion.cc");
  // Without the header, the member's declared type is unknown.
  EXPECT_EQ(CountRule(LintSource("companion.cc", source, {}),
                      "det-unordered-iter"),
            0);
  // With it, the loop over by_name_ is caught.
  LintOptions options;
  options.companion_sources.push_back(
      ReadFixture("det_unordered_iter_companion.h"));
  EXPECT_EQ(CountRule(LintSource("companion.cc", source, options),
                      "det-unordered-iter"),
            1);
}

TEST(LintRulesTest, RngCopyFixtures) {
  // One by-value parameter and one copy-init.
  EXPECT_EQ(CountRule(LintFixture("det_rng_copy_pos.cc"), "det-rng-copy"), 2);
  EXPECT_EQ(CountRule(LintFixture("det_rng_copy_neg.cc"), "det-rng-copy"), 0);
}

TEST(LintRulesTest, FloatEqFixtures) {
  const auto findings = LintFixture("float_eq_pos.cc", /*in_src_tree=*/true);
  EXPECT_EQ(CountRule(findings, "float-eq"), 4);
  for (const Finding& f : findings) {
    if (f.rule == "float-eq") {
      EXPECT_EQ(f.severity, Severity::kWarning);
    }
  }
  EXPECT_EQ(CountRule(LintFixture("float_eq_neg.cc", /*in_src_tree=*/true),
                      "float-eq"),
            0);
}

TEST(LintRulesTest, WallclockIncludeFixtures) {
  EXPECT_EQ(CountRule(LintFixture("wallclock_include_pos.cc",
                                  /*in_src_tree=*/true),
                      "wallclock-include"),
            4);
  EXPECT_EQ(CountRule(LintFixture("wallclock_include_neg.cc",
                                  /*in_src_tree=*/true),
                      "wallclock-include"),
            0);
}

TEST(LintRulesTest, SrcOnlyRulesAreGatedOffOutsideSrc) {
  EXPECT_EQ(LintFixture("float_eq_pos.cc", /*in_src_tree=*/false).size(), 0u);
  EXPECT_EQ(
      CountRule(LintFixture("wallclock_include_pos.cc", /*in_src_tree=*/false),
                "wallclock-include"),
      0);
}

TEST(LintRulesTest, FindingsAreSortedByPosition) {
  const auto findings = LintFixture("det_wallclock_pos.cc");
  for (std::size_t i = 1; i < findings.size(); ++i) {
    EXPECT_TRUE(findings[i - 1].line < findings[i].line ||
                (findings[i - 1].line == findings[i].line &&
                 findings[i - 1].col <= findings[i].col));
  }
}

TEST(LintRulesTest, EveryRuleHasAFixturePair) {
  // The corpus convention: <rule-with-dashes-as-underscores>_{pos,neg}.cc.
  std::set<std::string> ids;
  for (const RuleInfo& rule : Rules()) ids.insert(rule.id);
  EXPECT_EQ(ids.size(), 7u);
  for (const RuleInfo& rule : Rules()) {
    std::string stem = rule.id;
    for (char& c : stem) {
      if (c == '-') c = '_';
    }
    EXPECT_FALSE(ReadFixture(stem + "_pos.cc").empty()) << rule.id;
    EXPECT_FALSE(ReadFixture(stem + "_neg.cc").empty()) << rule.id;
  }
}

// --- allowlist --------------------------------------------------------------

TEST(LintAllowlistTest, ParsesJustifiedEntries) {
  Allowlist allowlist;
  const std::string error = ParseAllowlist(
      "# comment\n"
      "\n"
      "exp/experiment.cc:det-wallclock -- RunBudget bounds wall time\n"
      "core/system.h:float-eq -- sentinel compare is the point\n",
      &allowlist);
  EXPECT_EQ(error, "");
  ASSERT_EQ(allowlist.entries.size(), 2u);
  EXPECT_EQ(allowlist.entries[0].path, "exp/experiment.cc");
  EXPECT_EQ(allowlist.entries[0].rule, "det-wallclock");
  EXPECT_EQ(allowlist.entries[0].justification,
            "RunBudget bounds wall time");
  EXPECT_EQ(allowlist.entries[0].line, 3);
  EXPECT_FALSE(allowlist.entries[0].used);
}

TEST(LintAllowlistTest, JustificationIsMandatory) {
  Allowlist allowlist;
  EXPECT_NE(ParseAllowlist("core/system.h:float-eq\n", &allowlist), "");
  EXPECT_NE(ParseAllowlist("core/system.h:float-eq -- \n", &allowlist), "");
}

TEST(LintAllowlistTest, UnknownRuleIsAnError) {
  Allowlist allowlist;
  EXPECT_NE(ParseAllowlist("a.cc:no-such-rule -- why\n", &allowlist), "");
}

TEST(LintAllowlistTest, LegacyGrepTagsAreTranslated) {
  Allowlist allowlist;
  const std::string error = ParseAllowlist(
      "a.cc:rand -- x\n"
      "b.cc:random_device -- x\n"
      "c.cc:wallclock -- x\n"
      "d.cc:unordered-iter -- x\n",
      &allowlist);
  EXPECT_EQ(error, "");
  ASSERT_EQ(allowlist.entries.size(), 4u);
  EXPECT_EQ(allowlist.entries[0].rule, "det-libc-rand");
  EXPECT_EQ(allowlist.entries[1].rule, "det-random-device");
  EXPECT_EQ(allowlist.entries[2].rule, "det-wallclock");
  EXPECT_EQ(allowlist.entries[3].rule, "det-unordered-iter");
}

TEST(LintAllowlistTest, ApplyDropsMatchesAndMarksUsed) {
  Allowlist allowlist;
  ASSERT_EQ(ParseAllowlist(
                "wallclock_pos:det-wallclock -- fixture exception\n"
                "never_matches.cc:float-eq -- dead entry\n",
                &allowlist),
            "");
  auto findings = LintFixture("det_wallclock_pos.cc");
  ASSERT_GT(findings.size(), 0u);
  const auto kept = ApplyAllowlist(std::move(findings), &allowlist);
  EXPECT_EQ(CountRule(kept, "det-wallclock"), 0);
  EXPECT_TRUE(allowlist.entries[0].used);
  EXPECT_FALSE(allowlist.entries[1].used);  // dead — the driver reports it
}

}  // namespace
}  // namespace strip::check::lint
