// The --audit guarantee: attaching the invariant auditor does not
// perturb the run. Same config + seed, with and without the auditor,
// must produce byte-identical telemetry documents — the auditor is
// read-only and adds no events, so every series, histogram, and
// robustness metric matches to the last byte.

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "check/invariant_auditor.h"
#include "core/system.h"
#include "obs/telemetry.h"
#include "sim/simulator.h"

namespace strip::check {
namespace {

std::string TelemetryJson(const core::Config& config, std::uint64_t seed,
                          bool with_audit) {
  sim::Simulator simulator;
  core::System system(&simulator, config, base::RngSeed(seed));
  obs::RunTelemetry::Options options;
  options.seed = seed;
  obs::RunTelemetry telemetry(&system, options);
  InvariantAuditor auditor;
  if (with_audit) {
    auditor.set_system(&system);
    system.AddObserver(&auditor);
  }
  const core::RunMetrics metrics = system.Run();
  if (with_audit) {
    EXPECT_TRUE(auditor.ok()) << auditor.Report();
  }
  std::ostringstream out;
  telemetry.WriteJson(out, metrics);
  return out.str();
}

TEST(AuditIdentityTest, TelemetryByteIdenticalDefaultConfig) {
  core::Config config;
  config.sim_seconds = 30.0;
  EXPECT_EQ(TelemetryJson(config, 11, false),
            TelemetryJson(config, 11, true));
}

TEST(AuditIdentityTest, TelemetryByteIdenticalFaultHeavyOd) {
  core::Config config;
  config.policy = core::PolicyKind::kOnDemand;
  config.sim_seconds = 60.0;
  config.alpha = 0.5;
  config.faults =
      "outage@10+5:speedup=4;burst@30+10:factor=3;loss@20+5:p=0.2;"
      "dup@25+5:p=0.2;reorder@40+5:p=0.3;cpu@45+5:factor=0.5";
  config.shed_by_importance = true;
  config.overload_governor = true;
  config.uq_max = 64;
  EXPECT_EQ(TelemetryJson(config, 11, false),
            TelemetryJson(config, 11, true));
}

}  // namespace
}  // namespace strip::check
