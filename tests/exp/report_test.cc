#include "exp/report.h"

#include <sstream>

#include <gtest/gtest.h>

namespace strip::exp {
namespace {

// Builds a small result by hand so formatting is fully predictable.
SweepSpec HandSpec() {
  SweepSpec spec;
  spec.policies = {core::PolicyKind::kUpdateFirst,
                   core::PolicyKind::kTransactionFirst};
  spec.x_name = "lambda_t";
  spec.x_values = {5, 10};
  spec.apply_x = [](core::Config&, double) {};
  spec.replications = 1;
  return spec;
}

SweepResult HandResult(double scale) {
  SweepResult result(2, 2, 1);
  for (std::size_t p = 0; p < 2; ++p) {
    for (std::size_t x = 0; x < 2; ++x) {
      core::RunMetrics m;
      m.observed_seconds = 1;
      m.value_committed =
          scale * (static_cast<double>(p) * 10 + static_cast<double>(x) + 1);
      result.mutable_cell(p, x)[0] = m;
    }
  }
  return result;
}

const MetricFn kAv = [](const core::RunMetrics& m) { return m.av(); };

TEST(ReportTest, PrintSeriesLayout) {
  std::ostringstream out;
  PrintSeries(out, HandSpec(), HandResult(1.0), "AV", kAv);
  const std::string s = out.str();
  EXPECT_NE(s.find("# AV vs lambda_t"), std::string::npos);
  EXPECT_NE(s.find("UF"), std::string::npos);
  EXPECT_NE(s.find("TF"), std::string::npos);
  // Cell (policy 0, x 0) holds 1.0; (policy 1, x 1) holds 12.0.
  EXPECT_NE(s.find("1.0000"), std::string::npos);
  EXPECT_NE(s.find("12.0000"), std::string::npos);
}

TEST(ReportTest, PrintSeriesWithCi) {
  std::ostringstream out;
  PrintSeries(out, HandSpec(), HandResult(1.0), "AV", kAv,
              /*with_ci=*/true);
  EXPECT_NE(out.str().find("±"), std::string::npos);
}

TEST(ReportTest, CsvLayout) {
  std::ostringstream out;
  PrintSeriesCsv(out, HandSpec(), HandResult(1.0), "AV", kAv);
  const std::string s = out.str();
  EXPECT_NE(s.find("lambda_t,policy,AV,ci95"), std::string::npos);
  EXPECT_NE(s.find("5,UF,1,"), std::string::npos);
  EXPECT_NE(s.find("10,TF,12,"), std::string::npos);
}

TEST(ReportTest, RatioDividesCellwise) {
  std::ostringstream out;
  PrintSeriesRatio(out, HandSpec(), HandResult(3.0), HandResult(1.0), "AV",
                   kAv);
  const std::string s = out.str();
  // Every ratio is exactly 3.
  EXPECT_NE(s.find("3.0000"), std::string::npos);
  EXPECT_EQ(s.find("1.0000"), std::string::npos);
}

TEST(ReportTest, RatioHandlesZeroDenominator) {
  std::ostringstream out;
  PrintSeriesRatio(out, HandSpec(), HandResult(1.0), HandResult(0.0), "AV",
                   kAv);
  EXPECT_NE(out.str().find("0.0000"), std::string::npos);
}

}  // namespace
}  // namespace strip::exp
