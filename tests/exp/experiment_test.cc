#include "exp/experiment.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

namespace strip::exp {
namespace {

core::Config QuickConfig() {
  core::Config config;
  config.sim_seconds = 10.0;
  return config;
}

TEST(RunOnceTest, ProducesPlausibleMetrics) {
  const core::RunMetrics m = RunOnce(QuickConfig(), 1);
  EXPECT_DOUBLE_EQ(m.observed_seconds, 10.0);
  EXPECT_GT(m.txns_arrived, 0u);
}

TEST(RunOnceTest, DeterministicBySeed) {
  const core::RunMetrics a = RunOnce(QuickConfig(), 5);
  const core::RunMetrics b = RunOnce(QuickConfig(), 5);
  EXPECT_DOUBLE_EQ(a.value_committed, b.value_committed);
  EXPECT_EQ(a.updates_installed, b.updates_installed);
}

TEST(ReplicateTest, ReturnsOneRunPerSeed) {
  const auto runs = Replicate(QuickConfig(), 3, 42);
  ASSERT_EQ(runs.size(), 3u);
  // Different seeds give different randomness.
  EXPECT_NE(runs[0].value_committed, runs[1].value_committed);
}

TEST(ReplicateTest, FirstRunMatchesRunOnce) {
  const auto runs = Replicate(QuickConfig(), 2, 42);
  const core::RunMetrics direct = RunOnce(QuickConfig(), 42);
  EXPECT_DOUBLE_EQ(runs[0].value_committed, direct.value_committed);
}

SweepSpec QuickSweep() {
  SweepSpec spec;
  spec.base = QuickConfig();
  spec.policies = {core::PolicyKind::kUpdateFirst,
                   core::PolicyKind::kOnDemand};
  spec.x_name = "lambda_t";
  spec.x_values = {5, 15};
  spec.apply_x = [](core::Config& c, double x) { c.lambda_t = x; };
  spec.replications = 2;
  spec.base_seed = 42;
  return spec;
}

TEST(SweepTest, ShapeMatchesSpec) {
  const SweepResult result = RunSweep(QuickSweep());
  EXPECT_EQ(result.n_policies(), 2u);
  EXPECT_EQ(result.n_x(), 2u);
  EXPECT_EQ(result.cell(0, 0).size(), 2u);
  EXPECT_EQ(result.cell(1, 1).size(), 2u);
}

TEST(SweepTest, CellsApplyPolicyAndX) {
  const SweepResult result = RunSweep(QuickSweep());
  // Higher lambda_t means more arrivals, whatever the policy.
  for (std::size_t p = 0; p < 2; ++p) {
    EXPECT_GT(result.cell(p, 1)[0].txns_arrived,
              result.cell(p, 0)[0].txns_arrived);
  }
}

TEST(SweepTest, MatchesDirectRunsCellByCell) {
  const SweepSpec spec = QuickSweep();
  const SweepResult result = RunSweep(spec);
  core::Config config = spec.base;
  config.policy = core::PolicyKind::kOnDemand;
  config.lambda_t = 15;
  const core::RunMetrics direct = RunOnce(config, 43);  // replication 1
  EXPECT_DOUBLE_EQ(result.cell(1, 1)[1].value_committed,
                   direct.value_committed);
}

TEST(SweepTest, SingleThreadMatchesParallel) {
  SweepSpec spec = QuickSweep();
  spec.parallel.jobs = 1;
  const SweepResult serial = RunSweep(spec);
  spec.parallel.jobs = 4;
  const SweepResult parallel = RunSweep(spec);
  for (std::size_t p = 0; p < 2; ++p) {
    for (std::size_t x = 0; x < 2; ++x) {
      for (int r = 0; r < 2; ++r) {
        EXPECT_DOUBLE_EQ(serial.cell(p, x)[r].value_committed,
                         parallel.cell(p, x)[r].value_committed);
      }
    }
  }
}

TEST(SweepTest, AggregateComputesMeanAndCi) {
  const SweepResult result = RunSweep(QuickSweep());
  const MetricFn metric = [](const core::RunMetrics& m) { return m.av(); };
  const sim::Summary summary = result.Aggregate(0, 0, metric);
  EXPECT_EQ(summary.samples, 2);
  const double manual = (metric(result.cell(0, 0)[0]) +
                         metric(result.cell(0, 0)[1])) /
                        2.0;
  EXPECT_DOUBLE_EQ(summary.mean, manual);
  EXPECT_DOUBLE_EQ(result.Mean(0, 0, metric), manual);
}

TEST(SweepTest, SkipCellLeavesDefaultRunsAndSkipsCallback) {
  SweepSpec spec = QuickSweep();
  std::vector<std::pair<std::size_t, std::size_t>> done;
  spec.skip_cell = [](std::size_t p, std::size_t x) {
    return p == 0 && x == 0;
  };
  spec.on_cell_done = [&done](std::size_t p, std::size_t x,
                              const std::vector<core::RunMetrics>&,
                              bool timed_out) {
    EXPECT_FALSE(timed_out);
    done.emplace_back(p, x);
  };
  spec.parallel.jobs = 1;
  const SweepResult result = RunSweep(spec);
  // The skipped cell holds default-constructed metrics...
  EXPECT_EQ(result.cell(0, 0)[0].txns_arrived, 0u);
  // ...every other cell ran and was reported exactly once.
  EXPECT_GT(result.cell(0, 1)[0].txns_arrived, 0u);
  EXPECT_GT(result.cell(1, 0)[0].txns_arrived, 0u);
  ASSERT_EQ(done.size(), 3u);
  for (const auto& [p, x] : done) {
    EXPECT_FALSE(p == 0 && x == 0);
  }
}

TEST(SweepTest, ProgressReportsEveryCellMonotonically) {
  // on_progress is serialized with on_cell_done: `done` must step
  // 1..total with no repeats or gaps even under a parallel pool.
  SweepSpec spec = QuickSweep();
  spec.parallel.jobs = 4;
  std::vector<std::size_t> dones;
  std::size_t reported_total = 0;
  spec.on_progress = [&](std::size_t done, std::size_t total) {
    dones.push_back(done);
    reported_total = total;
  };
  RunSweep(spec);
  ASSERT_EQ(dones.size(), 4u);  // 2 policies x 2 x-values
  EXPECT_EQ(reported_total, 4u);
  for (std::size_t i = 0; i < dones.size(); ++i) {
    EXPECT_EQ(dones[i], i + 1);
  }
}

TEST(SweepTest, ProgressCountsSkipTheSkippedCells) {
  SweepSpec spec = QuickSweep();
  spec.parallel.jobs = 2;
  spec.skip_cell = [](std::size_t p, std::size_t x) {
    return p == 0 && x == 0;
  };
  std::size_t calls = 0;
  std::size_t last_total = 0;
  spec.on_progress = [&](std::size_t, std::size_t total) {
    ++calls;
    last_total = total;
  };
  RunSweep(spec);
  EXPECT_EQ(calls, 3u);
  EXPECT_EQ(last_total, 3u);
}

TEST(SweepTest, CellTimeoutAppliesPerCellUnderParallelJobs) {
  // Each worker arms the wall-clock budget when it picks the cell up,
  // so a tiny timeout truncates every cell rather than only the ones
  // unlucky enough to start late.
  SweepSpec spec = QuickSweep();
  spec.base.sim_seconds = 10000.0;
  spec.parallel.jobs = 4;
  spec.budget.wall_seconds = 0.05;
  spec.budget.slice_sim_seconds = 1.0;
  std::size_t timed_out_cells = 0;
  spec.on_cell_done = [&](std::size_t, std::size_t,
                          const std::vector<core::RunMetrics>& runs,
                          bool timed_out) {
    if (timed_out) ++timed_out_cells;
    ASSERT_FALSE(runs.empty());
    EXPECT_LT(runs[0].observed_seconds, spec.base.sim_seconds);
  };
  RunSweep(spec);
  EXPECT_EQ(timed_out_cells, 4u);
}

TEST(SweepTest, UnbudgetedRunMatchesBudgetedWithRoomToSpare) {
  // A generous wall-clock budget must not perturb results: the sliced
  // execution replays the identical event sequence.
  SweepSpec plain = QuickSweep();
  SweepSpec budgeted = QuickSweep();
  budgeted.budget.wall_seconds = 3600.0;
  budgeted.budget.slice_sim_seconds = 0.5;
  bool any_timeout = false;
  budgeted.on_cell_done = [&any_timeout](std::size_t, std::size_t,
                                         const std::vector<core::RunMetrics>&,
                                         bool timed_out) {
    any_timeout |= timed_out;
  };
  const SweepResult a = RunSweep(plain);
  const SweepResult b = RunSweep(budgeted);
  EXPECT_FALSE(any_timeout);
  for (std::size_t p = 0; p < a.n_policies(); ++p) {
    for (std::size_t x = 0; x < a.n_x(); ++x) {
      for (std::size_t r = 0; r < a.cell(p, x).size(); ++r) {
        EXPECT_EQ(a.cell(p, x)[r].ToString(), b.cell(p, x)[r].ToString());
      }
    }
  }
}

TEST(RunOnceTest, BudgetTimeoutHaltsEarly) {
  core::Config config = QuickConfig();
  config.sim_seconds = 10000.0;  // far more than the budget allows
  RunBudget budget;
  budget.wall_seconds = 0.05;
  budget.slice_sim_seconds = 1.0;
  bool timed_out = false;
  const core::RunMetrics m =
      RunOnce(config, 1, nullptr, {}, budget, &timed_out);
  EXPECT_TRUE(timed_out);
  EXPECT_LT(m.observed_seconds, config.sim_seconds);
  EXPECT_GT(m.observed_seconds, 0.0);
}

TEST(SweepDeathTest, InvalidSpecsDie) {
  SweepSpec spec = QuickSweep();
  spec.policies.clear();
  EXPECT_DEATH(RunSweep(spec), "policy");
  spec = QuickSweep();
  spec.x_values.clear();
  EXPECT_DEATH(RunSweep(spec), "x value");
  spec = QuickSweep();
  spec.apply_x = nullptr;
  EXPECT_DEATH(RunSweep(spec), "apply_x");
  spec = QuickSweep();
  spec.replications = 0;
  EXPECT_DEATH(RunSweep(spec), "replications");
}

TEST(SweepResultDeathTest, OutOfRangeCellDies) {
  const SweepResult result = RunSweep(QuickSweep());
  EXPECT_DEATH(result.cell(2, 0), "");
  EXPECT_DEATH(result.cell(0, 2), "");
}

}  // namespace
}  // namespace strip::exp
