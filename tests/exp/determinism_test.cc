// RunSweep must be a pure function of its spec: worker count only
// changes which thread executes a cell, never the cell's result. Every
// replication seeds its own RandomStream (base_seed + replication), so
// a 1-thread and an 8-thread sweep of the same spec must agree bit for
// bit on every metric of every run.

#include <cstddef>

#include <gtest/gtest.h>

#include "core/config.h"
#include "core/metrics.h"
#include "exp/experiment.h"

namespace strip::exp {
namespace {

SweepSpec SmallSpec(int threads) {
  SweepSpec spec;
  spec.base.sim_seconds = 5.0;
  spec.policies = {core::PolicyKind::kUpdateFirst,
                   core::PolicyKind::kOnDemand};
  spec.x_name = "lambda_t";
  spec.x_values = {10.0, 25.0};
  spec.apply_x = [](core::Config& config, double x) { config.lambda_t = x; };
  spec.replications = 3;
  spec.base_seed = 42;
  spec.parallel.jobs = threads;
  return spec;
}

void ExpectRunsIdentical(const core::RunMetrics& a,
                         const core::RunMetrics& b) {
  EXPECT_EQ(a.observed_seconds, b.observed_seconds);

  EXPECT_EQ(a.txns_arrived, b.txns_arrived);
  EXPECT_EQ(a.txns_committed, b.txns_committed);
  EXPECT_EQ(a.txns_committed_fresh, b.txns_committed_fresh);
  EXPECT_EQ(a.txns_missed_deadline, b.txns_missed_deadline);
  EXPECT_EQ(a.txns_infeasible, b.txns_infeasible);
  EXPECT_EQ(a.txns_stale_aborted, b.txns_stale_aborted);
  EXPECT_EQ(a.txns_overload_dropped, b.txns_overload_dropped);
  EXPECT_EQ(a.txns_inflight_at_end, b.txns_inflight_at_end);
  EXPECT_EQ(a.txns_committed_stale, b.txns_committed_stale);
  EXPECT_EQ(a.value_committed, b.value_committed);
  for (int c = 0; c < 2; ++c) {
    EXPECT_EQ(a.txns_arrived_by_class[c], b.txns_arrived_by_class[c]);
    EXPECT_EQ(a.txns_committed_by_class[c], b.txns_committed_by_class[c]);
    EXPECT_EQ(a.value_committed_by_class[c], b.value_committed_by_class[c]);
  }

  EXPECT_EQ(a.updates_arrived, b.updates_arrived);
  EXPECT_EQ(a.updates_dropped_os_full, b.updates_dropped_os_full);
  EXPECT_EQ(a.updates_dropped_uq_overflow, b.updates_dropped_uq_overflow);
  EXPECT_EQ(a.updates_dropped_expired, b.updates_dropped_expired);
  EXPECT_EQ(a.updates_installed, b.updates_installed);
  EXPECT_EQ(a.updates_unworthy, b.updates_unworthy);
  EXPECT_EQ(a.updates_dropped_superseded, b.updates_dropped_superseded);
  EXPECT_EQ(a.updates_applied_on_demand, b.updates_applied_on_demand);
  EXPECT_EQ(a.triggers_fired, b.triggers_fired);
  EXPECT_EQ(a.io_stalls, b.io_stalls);

  EXPECT_EQ(a.cpu_txn_seconds, b.cpu_txn_seconds);
  EXPECT_EQ(a.cpu_update_seconds, b.cpu_update_seconds);

  EXPECT_EQ(a.f_old_low, b.f_old_low);
  EXPECT_EQ(a.f_old_high, b.f_old_high);

  EXPECT_EQ(a.response_mean, b.response_mean);
  EXPECT_EQ(a.response_p50, b.response_p50);
  EXPECT_EQ(a.response_p95, b.response_p95);
  EXPECT_EQ(a.response_p99, b.response_p99);

  EXPECT_EQ(a.uq_length_avg, b.uq_length_avg);
  EXPECT_EQ(a.uq_length_max, b.uq_length_max);
  EXPECT_EQ(a.os_length_avg, b.os_length_avg);
}

TEST(DeterminismTest, SweepIsBitIdenticalAcrossThreadCounts) {
  const SweepResult serial = RunSweep(SmallSpec(1));
  const SweepResult parallel = RunSweep(SmallSpec(8));

  ASSERT_EQ(serial.n_policies(), parallel.n_policies());
  ASSERT_EQ(serial.n_x(), parallel.n_x());
  for (std::size_t p = 0; p < serial.n_policies(); ++p) {
    for (std::size_t x = 0; x < serial.n_x(); ++x) {
      const auto& runs1 = serial.cell(p, x);
      const auto& runs8 = parallel.cell(p, x);
      ASSERT_EQ(runs1.size(), runs8.size());
      for (std::size_t r = 0; r < runs1.size(); ++r) {
        SCOPED_TRACE(::testing::Message()
                     << "policy " << p << " x " << x << " rep " << r);
        ExpectRunsIdentical(runs1[r], runs8[r]);
      }
    }
  }
}

// Same spec, run twice with the same thread count: guards against
// hidden global state leaking between sweeps.
TEST(DeterminismTest, RepeatedSweepIsBitIdentical) {
  const SweepResult first = RunSweep(SmallSpec(4));
  const SweepResult second = RunSweep(SmallSpec(4));
  for (std::size_t p = 0; p < first.n_policies(); ++p) {
    for (std::size_t x = 0; x < first.n_x(); ++x) {
      for (int r = 0; r < 3; ++r) {
        SCOPED_TRACE(::testing::Message()
                     << "policy " << p << " x " << x << " rep " << r);
        ExpectRunsIdentical(first.cell(p, x)[r], second.cell(p, x)[r]);
      }
    }
  }
}

}  // namespace
}  // namespace strip::exp
