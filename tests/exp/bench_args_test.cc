#include "exp/bench_args.h"

#include <gtest/gtest.h>

namespace strip::exp {
namespace {

BenchArgs Parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return BenchArgs::Parse(static_cast<int>(argv.size()),
                          const_cast<char**>(argv.data()));
}

TEST(BenchArgsTest, Defaults) {
  const BenchArgs args = Parse({});
  EXPECT_DOUBLE_EQ(args.seconds, 200.0);
  EXPECT_EQ(args.replications, 2);
  EXPECT_EQ(args.seed, 42u);
  EXPECT_EQ(args.parallel.jobs, 0);
  EXPECT_FALSE(args.parallel.pin_cores);
  EXPECT_FALSE(args.csv);
}

TEST(BenchArgsTest, ParsesEveryFlag) {
  const BenchArgs args = Parse({"--seconds=50", "--reps=5", "--seed=7",
                                "--jobs=3", "--pin-cores", "--csv"});
  EXPECT_DOUBLE_EQ(args.seconds, 50.0);
  EXPECT_EQ(args.replications, 5);
  EXPECT_EQ(args.seed, 7u);
  EXPECT_EQ(args.parallel.jobs, 3);
  EXPECT_TRUE(args.parallel.pin_cores);
  EXPECT_TRUE(args.csv);
}

TEST(BenchArgsDeathTest, ThreadsWasRemoved) {
  EXPECT_EXIT(Parse({"--threads=3"}), ::testing::ExitedWithCode(2),
              "--threads= was removed; use --jobs=3");
}

TEST(BenchArgsTest, FullPreset) {
  const BenchArgs args = Parse({"--full"});
  EXPECT_DOUBLE_EQ(args.seconds, 1000.0);
  EXPECT_EQ(args.replications, 3);
}

TEST(BenchArgsTest, ApplyToSetsSimSeconds) {
  const BenchArgs args = Parse({"--seconds=77"});
  core::Config config;
  args.ApplyTo(config);
  EXPECT_DOUBLE_EQ(config.sim_seconds, 77.0);
}

TEST(BenchArgsDeathTest, UnknownFlagExits) {
  EXPECT_EXIT(Parse({"--bogus"}), ::testing::ExitedWithCode(2), "usage");
}

TEST(BenchArgsDeathTest, NonPositiveSecondsExits) {
  EXPECT_EXIT(Parse({"--seconds=0"}), ::testing::ExitedWithCode(2), "usage");
}

}  // namespace
}  // namespace strip::exp
