// Cross-validation: the closed-form predictions of exp/analysis.h
// against hand arithmetic AND against the simulator itself. A
// disagreement here means either the math or the event engine drifted.

#include "exp/analysis.h"

#include <gtest/gtest.h>

#include "exp/experiment.h"

namespace strip::exp {
namespace {

TEST(AnalysisTest, BaselineUpdateDemandIsAboutAFifth) {
  const core::Config config;
  // 400/s * 24000 instr / 50 MIPS.
  EXPECT_NEAR(PredictedUpdateDemand(config), 0.192, 1e-12);
}

TEST(AnalysisTest, UpdateDemandScalesWithRateAndCost) {
  core::Config config;
  config.lambda_u = 200;
  EXPECT_NEAR(PredictedUpdateDemand(config), 0.096, 1e-12);
  config.x_update = 44000;  // install = 48000 instr
  EXPECT_NEAR(PredictedUpdateDemand(config), 0.192, 1e-12);
}

TEST(AnalysisTest, TransactionDemandAtBaseline) {
  const core::Config config;
  // 10/s * (0.12 + 2*4000/50e6) = 10 * 0.12016.
  EXPECT_NEAR(PredictedTransactionDemand(config), 1.2016, 1e-12);
}

TEST(AnalysisTest, SaturationKneeNearTen) {
  const core::Config config;
  // (1 - 0.192) / 0.12016 = 6.72... — the *demand* knee; the paper's
  // empirical saturation at ~10 reflects TF-style policies shedding
  // update work. For UF the knee is exact.
  EXPECT_NEAR(PredictedSaturationLambdaT(config), 0.808 / 0.12016, 1e-9);
}

TEST(AnalysisTest, StalenessFloorAtBaseline) {
  const core::Config config;
  // lambda_obj = 400*0.5/500 = 0.4; e^{-0.4*7} = e^{-2.8}.
  EXPECT_NEAR(
      PredictedStalenessFloor(config, db::ObjectClass::kLowImportance),
      std::exp(-2.8), 1e-12);
  EXPECT_NEAR(
      PredictedStalenessFloor(config, db::ObjectClass::kHighImportance),
      std::exp(-2.8), 1e-12);
}

TEST(AnalysisTest, StalenessFloorNeverRefreshedClassIsOne) {
  core::Config config;
  config.p_ul = 1.0;  // every update targets the low partition
  EXPECT_DOUBLE_EQ(
      PredictedStalenessFloor(config, db::ObjectClass::kHighImportance),
      1.0);
  EXPECT_LT(
      PredictedStalenessFloor(config, db::ObjectClass::kLowImportance),
      0.01);
}

TEST(AnalysisTest, FreshTxnProbabilityBounds) {
  const core::Config config;
  const double p = PredictedFreshTxnProbability(config);
  // Two reads on average against a ~6% floor: around 0.85-0.92.
  EXPECT_GT(p, 0.82);
  EXPECT_LT(p, 0.95);
  // Zero floor -> certainty.
  core::Config fast;
  fast.alpha = 1e9;
  EXPECT_NEAR(PredictedFreshTxnProbability(fast), 1.0, 1e-9);
}

// --- simulation cross-checks -------------------------------------------------

TEST(AnalysisCrossCheckTest, UfUpdateUtilizationMatchesPrediction) {
  core::Config config;
  config.policy = core::PolicyKind::kUpdateFirst;
  config.sim_seconds = 80;
  const core::RunMetrics m = RunOnce(config, 3);
  EXPECT_NEAR(m.rho_u(), PredictedUpdateDemand(config), 0.01);
}

TEST(AnalysisCrossCheckTest, LightLoadTxnUtilizationMatchesPrediction) {
  core::Config config;
  config.lambda_t = 3;  // far below saturation: no losses
  config.sim_seconds = 80;
  const core::RunMetrics m = RunOnce(config, 3);
  EXPECT_NEAR(m.rho_t(), PredictedTransactionDemand(config), 0.03);
}

TEST(AnalysisCrossCheckTest, UfStalenessMatchesFloor) {
  core::Config config;
  config.policy = core::PolicyKind::kUpdateFirst;
  config.sim_seconds = 120;
  const core::RunMetrics m = RunOnce(config, 3);
  const double floor =
      PredictedStalenessFloor(config, db::ObjectClass::kLowImportance);
  EXPECT_NEAR(m.f_old_low, floor, 0.012);
  EXPECT_NEAR(m.f_old_high, floor, 0.012);
}

TEST(AnalysisCrossCheckTest, FloorTracksAlpha) {
  for (double alpha : {3.0, 5.0, 9.0}) {
    core::Config config;
    config.policy = core::PolicyKind::kUpdateFirst;
    config.alpha = alpha;
    config.sim_seconds = 100;
    const core::RunMetrics m = RunOnce(config, 3);
    EXPECT_NEAR(m.f_old_low,
                PredictedStalenessFloor(
                    config, db::ObjectClass::kLowImportance),
                0.02)
        << "alpha=" << alpha;
  }
}

TEST(AnalysisCrossCheckTest, LightLoadSuccessMatchesFreshProbability) {
  core::Config config;
  config.policy = core::PolicyKind::kUpdateFirst;
  config.lambda_t = 2;  // essentially every txn commits
  config.sim_seconds = 400;
  // ~800 commits: binomial noise ~0.012 sd at p ~ 0.88.
  const auto runs = Replicate(config, 2, 3);
  const double p_success =
      (runs[0].p_success() + runs[1].p_success()) / 2;
  EXPECT_NEAR(p_success, PredictedFreshTxnProbability(config), 0.04);
}

}  // namespace
}  // namespace strip::exp
