// ParallelRunner: the worker-pool behind RunSweep. The contract under
// test: every index in [0, count) executes exactly once whatever the
// job count, jobs=1 stays on the calling thread (no pool overhead for
// serial runs), and Serialized() gives mutual exclusion strong enough
// to guard non-atomic shared state.

#include "exp/parallel_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace strip::exp {
namespace {

ParallelOptions Jobs(int n) {
  ParallelOptions options;
  options.jobs = n;
  return options;
}

TEST(ParallelRunnerTest, HardwareJobsIsPositive) {
  EXPECT_GE(ParallelRunner::HardwareJobs(), 1);
}

TEST(ParallelRunnerTest, DefaultOptionsUseHardwareJobs) {
  ParallelRunner runner{ParallelOptions{}};
  EXPECT_EQ(runner.jobs(), ParallelRunner::HardwareJobs());
}

TEST(ParallelRunnerTest, NonPositiveJobsFallBackToHardware) {
  EXPECT_EQ(ParallelRunner(Jobs(0)).jobs(), ParallelRunner::HardwareJobs());
  EXPECT_EQ(ParallelRunner(Jobs(-3)).jobs(), ParallelRunner::HardwareJobs());
  EXPECT_EQ(ParallelRunner(Jobs(5)).jobs(), 5);
}

TEST(ParallelRunnerTest, EveryIndexRunsExactlyOnce) {
  for (int jobs : {1, 2, 4, 8}) {
    ParallelRunner runner(Jobs(jobs));
    constexpr std::size_t kCount = 100;
    std::vector<std::atomic<int>> hits(kCount);
    runner.Run(kCount, [&hits](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " jobs " << jobs;
    }
  }
}

TEST(ParallelRunnerTest, ZeroTasksIsANoop) {
  ParallelRunner runner(Jobs(4));
  runner.Run(0, [](std::size_t) { FAIL() << "task ran for empty count"; });
}

TEST(ParallelRunnerTest, MoreJobsThanTasksStillRunsEachOnce) {
  ParallelRunner runner(Jobs(16));
  std::vector<std::atomic<int>> hits(3);
  runner.Run(3, [&hits](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelRunnerTest, SingleJobRunsOnCallingThread) {
  // The serial fast path must not spawn: RunSweep with jobs=1 keeps
  // the historical single-threaded execution exactly.
  ParallelRunner runner(Jobs(1));
  const std::thread::id caller = std::this_thread::get_id();
  runner.Run(4, [caller](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ParallelRunnerTest, PinningForcesAWorkerThread) {
  // With --pin-cores even jobs=1 must run tasks on a spawned thread,
  // so the caller's affinity mask is never narrowed as a side effect.
  ParallelOptions options = Jobs(1);
  options.pin_cores = true;
  ParallelRunner runner(options);
  const std::thread::id caller = std::this_thread::get_id();
  runner.Run(2, [caller](std::size_t) {
    EXPECT_NE(std::this_thread::get_id(), caller);
  });
}

TEST(ParallelRunnerTest, SerializedExcludesConcurrentSections) {
  // A non-atomic counter bumped only inside Serialized(): any two
  // overlapping sections would lose increments.
  ParallelRunner runner(Jobs(8));
  constexpr std::size_t kCount = 2000;
  std::size_t counter = 0;
  runner.Run(kCount,
             [&](std::size_t) { runner.Serialized([&] { ++counter; }); });
  EXPECT_EQ(counter, kCount);
}

TEST(ParallelRunnerTest, TasksObserveIncreasingDispatchOrder) {
  // Dispatch hands out indices from an atomic counter, so a jobs=1
  // runner sees strictly ascending indices — the property the
  // deterministic merge in RunSweep leans on for its serial path.
  ParallelRunner runner(Jobs(1));
  std::vector<std::size_t> order;
  runner.Run(5, [&order](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 5u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelRunnerTest, PinCurrentThreadToCoreReturnsOnLinux) {
  // Exercised on a spawned thread so the test runner's own affinity
  // is untouched.
  std::thread probe([] {
#if defined(__linux__)
    EXPECT_TRUE(ParallelRunner::PinCurrentThreadToCore(0));
#else
    EXPECT_FALSE(ParallelRunner::PinCurrentThreadToCore(0));
#endif
  });
  probe.join();
}

}  // namespace
}  // namespace strip::exp
