// WriteFileAtomic / FileExists / RemoveStaleTmpFiles.

#include "exp/atomic_io.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace strip::exp {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(AtomicIoTest, WritesContentsAndLeavesNoTmp) {
  const std::string path = testing::TempDir() + "/atomic_io_basic.json";
  ASSERT_FALSE(WriteFileAtomic(path, "{\"a\": 1}\n").has_value());
  EXPECT_TRUE(FileExists(path));
  EXPECT_FALSE(FileExists(path + ".tmp"));
  EXPECT_EQ(ReadAll(path), "{\"a\": 1}\n");
}

TEST(AtomicIoTest, OverwriteReplacesWholeFile) {
  const std::string path = testing::TempDir() + "/atomic_io_over.json";
  ASSERT_FALSE(WriteFileAtomic(path, "long old contents\n").has_value());
  ASSERT_FALSE(WriteFileAtomic(path, "new\n").has_value());
  EXPECT_EQ(ReadAll(path), "new\n");
}

TEST(AtomicIoTest, FailureReportsPath) {
  const auto error =
      WriteFileAtomic("/nonexistent-dir/x.json", "contents");
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("/nonexistent-dir/x.json.tmp"), std::string::npos);
}

TEST(AtomicIoTest, FileExists) {
  EXPECT_FALSE(FileExists(testing::TempDir() + "/atomic_io_missing"));
}

TEST(AtomicIoTest, RemoveStaleTmpFilesOnlyTouchesTmp) {
  const std::string dir = testing::TempDir() + "/atomic_io_stale";
  ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);
  { std::ofstream(dir + "/cell_UF_00.json") << "done"; }
  { std::ofstream(dir + "/cell_OD_01.json.tmp") << "torn"; }
  const std::vector<std::string> removed = RemoveStaleTmpFiles(dir);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0], "cell_OD_01.json.tmp");
  EXPECT_TRUE(FileExists(dir + "/cell_UF_00.json"));
  EXPECT_FALSE(FileExists(dir + "/cell_OD_01.json.tmp"));
  // A missing directory is not an error.
  EXPECT_TRUE(RemoveStaleTmpFiles(dir + "/nope").empty());
}

}  // namespace
}  // namespace strip::exp
