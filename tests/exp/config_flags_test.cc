#include "exp/config_flags.h"

#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

namespace strip::exp {
namespace {

TEST(ConfigFlagsTest, SetsDoubleField) {
  core::Config config;
  EXPECT_FALSE(ApplyConfigFlag("lambda_t=17.5", config).has_value());
  EXPECT_DOUBLE_EQ(config.lambda_t, 17.5);
}

TEST(ConfigFlagsTest, SetsIntField) {
  core::Config config;
  EXPECT_FALSE(ApplyConfigFlag("n_low=123", config).has_value());
  EXPECT_EQ(config.n_low, 123);
}

TEST(ConfigFlagsTest, SetsBoolFieldInManySpellings) {
  core::Config config;
  for (const char* spelling : {"true", "1", "TRUE", "on"}) {
    config.abort_on_stale = false;
    EXPECT_FALSE(
        ApplyConfigFlag(std::string("abort_on_stale=") + spelling, config)
            .has_value());
    EXPECT_TRUE(config.abort_on_stale);
  }
  EXPECT_FALSE(ApplyConfigFlag("abort_on_stale=false", config).has_value());
  EXPECT_FALSE(config.abort_on_stale);
}

TEST(ConfigFlagsTest, SetsPolicyEnum) {
  core::Config config;
  EXPECT_FALSE(ApplyConfigFlag("policy=SU", config).has_value());
  EXPECT_EQ(config.policy, core::PolicyKind::kSplitUpdates);
  EXPECT_FALSE(ApplyConfigFlag("policy=FCF", config).has_value());
  EXPECT_EQ(config.policy, core::PolicyKind::kFixedFraction);
}

TEST(ConfigFlagsTest, SetsStalenessEnum) {
  core::Config config;
  EXPECT_FALSE(ApplyConfigFlag("staleness=UU", config).has_value());
  EXPECT_EQ(config.staleness, db::StalenessCriterion::kUnappliedUpdate);
  EXPECT_FALSE(ApplyConfigFlag("staleness=MA+UU", config).has_value());
  EXPECT_EQ(config.staleness, db::StalenessCriterion::kCombined);
}

TEST(ConfigFlagsTest, SetsDisciplineAndSched) {
  core::Config config;
  EXPECT_FALSE(ApplyConfigFlag("queue_discipline=LIFO", config).has_value());
  EXPECT_EQ(config.queue_discipline, core::QueueDiscipline::kLifo);
  EXPECT_FALSE(ApplyConfigFlag("txn_sched=EDF", config).has_value());
  EXPECT_EQ(config.txn_sched, txn::TxnSchedPolicy::kEarliestDeadline);
}

TEST(ConfigFlagsTest, RejectsUnknownName) {
  core::Config config;
  const auto error = ApplyConfigFlag("nonsense=1", config);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("unknown parameter"), std::string::npos);
}

TEST(ConfigFlagsTest, RejectsBadValue) {
  core::Config config;
  EXPECT_TRUE(ApplyConfigFlag("lambda_t=abc", config).has_value());
  EXPECT_TRUE(ApplyConfigFlag("policy=XX", config).has_value());
  EXPECT_TRUE(ApplyConfigFlag("abort_on_stale=maybe", config).has_value());
  EXPECT_TRUE(ApplyConfigFlag("n_low=12x", config).has_value());
}

TEST(ConfigFlagsTest, RejectsMissingEquals) {
  core::Config config;
  EXPECT_TRUE(ApplyConfigFlag("lambda_t", config).has_value());
}

TEST(ConfigFlagsTest, ApplyFlagsConsumesKnownLeavesRest) {
  core::Config config;
  const char* argv[] = {"prog", "--lambda_t=20", "--seed=7",
                        "positional", "--policy=UF"};
  std::vector<std::string> rest;
  const auto error = ApplyConfigFlags(5, const_cast<char**>(argv), config,
                                      &rest);
  EXPECT_FALSE(error.has_value());
  EXPECT_DOUBLE_EQ(config.lambda_t, 20);
  EXPECT_EQ(config.policy, core::PolicyKind::kUpdateFirst);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0], "--seed=7");
  EXPECT_EQ(rest[1], "positional");
}

TEST(ConfigFlagsTest, ApplyFlagsReportsBadValueForKnownName) {
  core::Config config;
  const char* argv[] = {"prog", "--lambda_t=oops"};
  const auto error =
      ApplyConfigFlags(2, const_cast<char**>(argv), config, nullptr);
  ASSERT_TRUE(error.has_value());
}

TEST(ConfigFlagsTest, SetsFaultSpecAndRobustnessFlags) {
  core::Config config;
  EXPECT_FALSE(
      ApplyConfigFlag("faults=outage@10+5:speedup=4;loss@20+5:p=0.2",
                      config)
          .has_value());
  EXPECT_EQ(config.faults, "outage@10+5:speedup=4;loss@20+5:p=0.2");
  EXPECT_FALSE(ApplyConfigFlag("shed_by_importance=true", config)
                   .has_value());
  EXPECT_TRUE(config.shed_by_importance);
  EXPECT_FALSE(ApplyConfigFlag("overload_governor=1", config).has_value());
  EXPECT_TRUE(config.overload_governor);
  EXPECT_FALSE(ApplyConfigFlag("governor_high_watermark=0.9", config)
                   .has_value());
  EXPECT_DOUBLE_EQ(config.governor_high_watermark, 0.9);
  // A malformed spec is rejected at flag-parse time with a one-line
  // error naming the bad token, not deferred to Validate().
  const auto error = ApplyConfigFlag("faults=bogus@1+2", config);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("bogus@1+2"), std::string::npos);
  EXPECT_EQ(error->find('\n'), std::string::npos);
}

TEST(ConfigFlagsTest, RejectsNonFiniteValues) {
  core::Config config;
  EXPECT_TRUE(ApplyConfigFlag("lambda_t=nan", config).has_value());
  EXPECT_TRUE(ApplyConfigFlag("lambda_t=inf", config).has_value());
  EXPECT_TRUE(ApplyConfigFlag("ips=-inf", config).has_value());
}

TEST(ConfigFlagsTest, RoundTripThroughToString) {
  core::Config config;
  config.lambda_t = 13.25;
  config.policy = core::PolicyKind::kOnDemand;
  config.staleness = db::StalenessCriterion::kUnappliedUpdate;
  config.queue_discipline = core::QueueDiscipline::kLifo;
  config.abort_on_stale = true;
  config.n_high = 77;

  // Re-apply every rendered line onto a fresh config.
  core::Config replay;
  std::istringstream lines(ConfigToString(config));
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(ApplyConfigFlag(line, replay).has_value()) << line;
  }
  EXPECT_DOUBLE_EQ(replay.lambda_t, 13.25);
  EXPECT_EQ(replay.policy, core::PolicyKind::kOnDemand);
  EXPECT_EQ(replay.staleness, db::StalenessCriterion::kUnappliedUpdate);
  EXPECT_EQ(replay.queue_discipline, core::QueueDiscipline::kLifo);
  EXPECT_TRUE(replay.abort_on_stale);
  EXPECT_EQ(replay.n_high, 77);
}

TEST(ConfigFlagsTest, RejectedAssignmentsLeaveConfigUntouched) {
  // Regression for the fuzz-target contract: an assignment the parser
  // rejects must not half-write the config — the default config still
  // validates and key fields keep their defaults.
  const core::Config defaults;
  for (const char* bad :
       {"alpha=", "alpha=junk", "lambda_t=1e", "policy=NOPE",
        "staleness=", "uq_max=x", "nosuchflag=1", "=5", "alpha",
        "faults=outage@"}) {
    core::Config config;
    const auto error = ApplyConfigFlag(bad, config);
    ASSERT_TRUE(error.has_value()) << bad;
    EXPECT_FALSE(error->empty()) << bad;
    EXPECT_FALSE(config.Validate().has_value())
        << bad << " corrupted the config: " << *config.Validate();
    EXPECT_EQ(config.alpha, defaults.alpha) << bad;
    EXPECT_EQ(config.lambda_t, defaults.lambda_t) << bad;
    EXPECT_EQ(config.policy, defaults.policy) << bad;
  }
}

TEST(ConfigFlagsTest, FlagNamesCoverTheTables) {
  const std::vector<std::string> names = ConfigFlagNames();
  auto has = [&](const char* name) {
    return std::find(names.begin(), names.end(), name) != names.end();
  };
  // Table 1, 2, 3 spot checks plus scenario/extension coverage.
  EXPECT_TRUE(has("lambda_u"));
  EXPECT_TRUE(has("alpha"));
  EXPECT_TRUE(has("x_update"));
  EXPECT_TRUE(has("feasible_deadline"));
  EXPECT_TRUE(has("policy"));
  EXPECT_TRUE(has("staleness"));
  EXPECT_TRUE(has("indexed_update_queue"));
  EXPECT_TRUE(has("buffer_hit_ratio"));
  EXPECT_GE(names.size(), 35u);
}

}  // namespace
}  // namespace strip::exp
