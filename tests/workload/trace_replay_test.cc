#include "workload/trace_replay.h"

#include <sstream>
#include <vector>

#include <gtest/gtest.h>

namespace strip::workload {
namespace {

using Record = TraceReplay::Record;

TEST(TraceReplayParseTest, ParsesUpdateRecord) {
  Record record;
  const auto error = TraceReplay::ParseLine(
      "update,1.5,high,42,1.4,3.25", 7, 1, &record);
  EXPECT_FALSE(error.has_value()) << *error;
  const auto& update = std::get<db::Update>(record);
  EXPECT_EQ(update.id.value(), 7u);
  EXPECT_DOUBLE_EQ(update.arrival_time, 1.5);
  EXPECT_EQ(update.object.cls, db::ObjectClass::kHighImportance);
  EXPECT_EQ(update.object.index, 42);
  EXPECT_DOUBLE_EQ(update.generation_time, 1.4);
  EXPECT_DOUBLE_EQ(update.value, 3.25);
}

TEST(TraceReplayParseTest, ParsesTxnRecord) {
  Record record;
  const auto error = TraceReplay::ParseLine(
      "txn,2.0,low,1.5,3.0,6000000,0.5,low:3;low:17", 1, 9, &record);
  EXPECT_FALSE(error.has_value()) << *error;
  const auto& params = std::get<txn::Transaction::Params>(record);
  EXPECT_EQ(params.id.value(), 9u);
  EXPECT_DOUBLE_EQ(params.arrival_time, 2.0);
  EXPECT_EQ(params.cls, txn::TxnClass::kLowValue);
  EXPECT_DOUBLE_EQ(params.value, 1.5);
  EXPECT_DOUBLE_EQ(params.deadline, 3.0);
  EXPECT_DOUBLE_EQ(params.computation_instructions, 6000000);
  EXPECT_DOUBLE_EQ(params.p_view, 0.5);
  ASSERT_EQ(params.read_set.size(), 2u);
  EXPECT_EQ(params.read_set[1],
            (db::ObjectId{db::ObjectClass::kLowImportance, 17}));
}

TEST(TraceReplayParseTest, EmptyReadSetAllowed) {
  Record record;
  const auto error = TraceReplay::ParseLine(
      "txn,2.0,high,1.0,3.0,1000,0,", 1, 1, &record);
  EXPECT_FALSE(error.has_value()) << *error;
  EXPECT_TRUE(
      std::get<txn::Transaction::Params>(record).read_set.empty());
}

TEST(TraceReplayParseTest, RejectsMalformedRecords) {
  Record record;
  EXPECT_TRUE(TraceReplay::ParseLine("bogus,1", 1, 1, &record).has_value());
  EXPECT_TRUE(
      TraceReplay::ParseLine("update,1.5,high,42,1.4", 1, 1, &record)
          .has_value());  // too few fields
  EXPECT_TRUE(
      TraceReplay::ParseLine("update,x,high,42,1.4,1", 1, 1, &record)
          .has_value());  // bad number
  EXPECT_TRUE(
      TraceReplay::ParseLine("update,1,medium,42,1.4,1", 1, 1, &record)
          .has_value());  // bad class
  EXPECT_TRUE(TraceReplay::ParseLine(
                  "txn,2.0,low,1.5,3.0,6000000,0.5,low-3", 1, 1, &record)
                  .has_value());  // bad read entry
}

TEST(TraceReplayParseTest, ParseStreamSkipsCommentsAndNumbersIds) {
  std::istringstream in(
      "# a fixture\n"
      "update,1.0,low,0,0.9,1\n"
      "\n"
      "txn,2.0,low,1.0,3.0,1000,0,low:0\n"
      "update,3.0,low,1,2.9,2\n");
  std::vector<Record> records;
  const auto error = TraceReplay::Parse(in, &records);
  EXPECT_FALSE(error.has_value()) << *error;
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(std::get<db::Update>(records[0]).id.value(), 1u);
  EXPECT_EQ(std::get<txn::Transaction::Params>(records[1]).id.value(), 1u);
  EXPECT_EQ(std::get<db::Update>(records[2]).id.value(), 2u);
}

TEST(TraceReplayParseTest, ParseReportsLineNumbers) {
  std::istringstream in("update,1.0,low,0,0.9,1\nbroken\n");
  std::vector<Record> records;
  const auto error = TraceReplay::Parse(in, &records);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("line 2"), std::string::npos);
}

TEST(TraceReplayTest, SchedulesRecordsAtArrivalTimes) {
  std::istringstream in(
      "update,1.0,low,0,0.9,1\n"
      "txn,2.0,low,1.0,3.0,1000,0,low:0\n"
      "update,0.5,high,3,0.4,2\n");
  std::vector<Record> records;
  ASSERT_FALSE(TraceReplay::Parse(in, &records).has_value());

  sim::Simulator simulator;
  std::vector<std::pair<double, char>> events;  // (time, kind)
  TraceReplay replay(
      &simulator, records,
      [&](const db::Update&) { events.push_back({simulator.now(), 'u'}); },
      [&](const txn::Transaction::Params&) {
        events.push_back({simulator.now(), 't'});
      });
  EXPECT_EQ(replay.size(), 3u);
  simulator.RunUntil(10.0);
  ASSERT_EQ(events.size(), 3u);
  // Replay ordered by arrival, not file order.
  EXPECT_EQ(events[0], (std::pair<double, char>{0.5, 'u'}));
  EXPECT_EQ(events[1], (std::pair<double, char>{1.0, 'u'}));
  EXPECT_EQ(events[2], (std::pair<double, char>{2.0, 't'}));
}

TEST(TraceReplayTest, FormatRoundTrips) {
  std::istringstream in(
      "update,1.5,high,42,1.4,3.25\n"
      "txn,2,low,1.5,3,6000000,0.5,low:3;low:17\n");
  std::vector<Record> records;
  ASSERT_FALSE(TraceReplay::Parse(in, &records).has_value());
  for (const Record& record : records) {
    const std::string line = FormatTraceRecord(record);
    Record reparsed;
    ASSERT_FALSE(
        TraceReplay::ParseLine(line, 1, 1, &reparsed).has_value())
        << line;
    if (const auto* u = std::get_if<db::Update>(&record)) {
      const auto& r = std::get<db::Update>(reparsed);
      EXPECT_EQ(u->object, r.object);
      EXPECT_DOUBLE_EQ(u->generation_time, r.generation_time);
    } else {
      const auto& p = std::get<txn::Transaction::Params>(record);
      const auto& r = std::get<txn::Transaction::Params>(reparsed);
      EXPECT_EQ(p.read_set, r.read_set);
      EXPECT_DOUBLE_EQ(p.deadline, r.deadline);
    }
  }
}

}  // namespace
}  // namespace strip::workload
