#include "workload/txn_source.h"

#include <vector>

#include <gtest/gtest.h>

#include "sim/stats.h"

namespace strip::workload {
namespace {

std::vector<txn::Transaction::Params> Collect(const TxnSource::Params& params,
                                              double seconds,
                                              std::uint64_t seed = 7) {
  sim::Simulator sim;
  std::vector<txn::Transaction::Params> txns;
  TxnSource source(&sim, params, base::RngSeed(seed),
                   [&](const txn::Transaction::Params& t) {
                     txns.push_back(t);
                   });
  sim.RunUntil(seconds);
  return txns;
}

TEST(TxnSourceTest, RateMatchesLambda) {
  TxnSource::Params params;
  params.arrival_rate = 10;
  const auto txns = Collect(params, 200.0);
  EXPECT_NEAR(static_cast<double>(txns.size()), 2000, 200);
}

TEST(TxnSourceTest, ClassSplitAndValueMeans) {
  TxnSource::Params params;
  const auto txns = Collect(params, 500.0);
  sim::Accumulator low_values, high_values;
  for (const auto& t : txns) {
    if (t.cls == txn::TxnClass::kLowValue) {
      low_values.Add(t.value);
    } else {
      high_values.Add(t.value);
    }
  }
  const double low_fraction =
      static_cast<double>(low_values.count()) /
      static_cast<double>(txns.size());
  EXPECT_NEAR(low_fraction, 0.5, 0.03);
  // Clamping at zero lifts the low mean slightly above 1.0.
  EXPECT_NEAR(low_values.mean(), 1.0, 0.1);
  EXPECT_NEAR(high_values.mean(), 2.0, 0.1);
  for (const auto& t : txns) EXPECT_GE(t.value, 0.0);
}

TEST(TxnSourceTest, ComputationTimesMatchDistribution) {
  TxnSource::Params params;
  const auto txns = Collect(params, 500.0);
  sim::Accumulator comp_seconds;
  for (const auto& t : txns) {
    comp_seconds.Add(t.computation_instructions / params.ips);
  }
  EXPECT_NEAR(comp_seconds.mean(), 0.12, 0.005);
  EXPECT_NEAR(comp_seconds.stddev(), 0.01, 0.003);
}

TEST(TxnSourceTest, ReadSetsMatchClassAndRange) {
  TxnSource::Params params;
  params.n_low = 11;
  params.n_high = 23;
  const auto txns = Collect(params, 200.0);
  for (const auto& t : txns) {
    const bool low = t.cls == txn::TxnClass::kLowValue;
    for (const auto& object : t.read_set) {
      EXPECT_EQ(object.cls, low ? db::ObjectClass::kLowImportance
                                : db::ObjectClass::kHighImportance);
      EXPECT_GE(object.index, 0);
      EXPECT_LT(object.index, low ? 11 : 23);
    }
  }
}

TEST(TxnSourceTest, ReadCountMeanMatches) {
  TxnSource::Params params;
  const auto txns = Collect(params, 500.0);
  sim::Accumulator reads;
  for (const auto& t : txns) reads.Add(static_cast<double>(t.read_set.size()));
  // Normal(2, 1) rounded and clamped at zero: mean a little above 2.
  EXPECT_NEAR(reads.mean(), 2.0, 0.15);
}

TEST(TxnSourceTest, DeadlineIsArrivalPlusEstimatePlusSlack) {
  TxnSource::Params params;
  const auto txns = Collect(params, 100.0);
  for (const auto& t : txns) {
    const double estimate =
        (t.computation_instructions +
         t.lookup_instructions * static_cast<double>(t.read_set.size())) /
        params.ips;
    const double slack = t.deadline - t.arrival_time - estimate;
    EXPECT_GE(slack, params.slack_min - 1e-9);
    EXPECT_LE(slack, params.slack_max + 1e-9);
  }
}

TEST(TxnSourceTest, SlackIsRoughlyUniform) {
  TxnSource::Params params;
  const auto txns = Collect(params, 500.0);
  sim::Accumulator slack;
  for (const auto& t : txns) {
    const double estimate =
        (t.computation_instructions +
         t.lookup_instructions * static_cast<double>(t.read_set.size())) /
        params.ips;
    slack.Add(t.deadline - t.arrival_time - estimate);
  }
  EXPECT_NEAR(slack.mean(), 0.55, 0.03);
}

TEST(TxnSourceTest, PViewAndLookupArePropagated) {
  TxnSource::Params params;
  params.p_view = 0.3;
  params.lookup_instructions = 1234;
  const auto txns = Collect(params, 20.0);
  ASSERT_FALSE(txns.empty());
  for (const auto& t : txns) {
    EXPECT_DOUBLE_EQ(t.p_view, 0.3);
    EXPECT_DOUBLE_EQ(t.lookup_instructions, 1234);
  }
}

TEST(TxnSourceTest, IdsAreSequential) {
  TxnSource::Params params;
  const auto txns = Collect(params, 20.0);
  for (std::size_t i = 0; i < txns.size(); ++i) {
    EXPECT_EQ(txns[i].id.value(), i + 1);
  }
}

TEST(TxnSourceTest, DeterministicBySeed) {
  TxnSource::Params params;
  const auto a = Collect(params, 20.0, 42);
  const auto b = Collect(params, 20.0, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival_time, b[i].arrival_time);
    EXPECT_DOUBLE_EQ(a[i].value, b[i].value);
    EXPECT_EQ(a[i].read_set.size(), b[i].read_set.size());
  }
}

TEST(TxnSourceTest, StopHaltsGeneration) {
  sim::Simulator sim;
  int count = 0;
  TxnSource::Params params;
  TxnSource source(&sim, params, base::RngSeed(7),
                   [&](const txn::Transaction::Params&) { ++count; });
  sim.RunUntil(2.0);
  const int at_stop = count;
  source.Stop();
  sim.RunUntil(10.0);
  EXPECT_EQ(count, at_stop);
}

TEST(TxnSourceDeathTest, InvalidParams) {
  sim::Simulator sim;
  TxnSource::Params params;
  params.slack_min = 2.0;
  params.slack_max = 1.0;
  EXPECT_DEATH(
      TxnSource(&sim, params, base::RngSeed(7), [](const txn::Transaction::Params&) {}),
      "slack");
}

}  // namespace
}  // namespace strip::workload
