#include "workload/multi_stream.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/config.h"
#include "core/system.h"
#include "sim/simulator.h"

namespace strip::workload {
namespace {

UpdateStream::Params FeedParams(double rate, int n_low, int n_high) {
  UpdateStream::Params params;
  params.arrival_rate = rate;
  params.n_low = n_low;
  params.n_high = n_high;
  return params;
}

TEST(MultiUpdateStreamTest, MergesRatesOfAllFeeds) {
  sim::Simulator sim;
  std::vector<db::Update> updates;
  std::vector<MultiUpdateStream::Feed> feeds;
  feeds.push_back({FeedParams(100, 10, 10), 0, 0});
  feeds.push_back({FeedParams(300, 10, 10), 0, 0});
  MultiUpdateStream multi(&sim, feeds, base::RngSeed(7),
                          [&](const db::Update& u) { updates.push_back(u); });
  sim.RunUntil(50.0);
  EXPECT_EQ(multi.feed_count(), 2u);
  // 400/s aggregate over 50 s.
  EXPECT_NEAR(static_cast<double>(updates.size()), 20000, 600);
  EXPECT_EQ(multi.generated(), updates.size());
}

TEST(MultiUpdateStreamTest, IdsAreGloballyUnique) {
  sim::Simulator sim;
  std::vector<db::Update> updates;
  std::vector<MultiUpdateStream::Feed> feeds;
  feeds.push_back({FeedParams(200, 10, 10), 0, 0});
  feeds.push_back({FeedParams(200, 10, 10), 0, 0});
  MultiUpdateStream multi(&sim, feeds, base::RngSeed(7),
                          [&](const db::Update& u) { updates.push_back(u); });
  sim.RunUntil(5.0);
  std::vector<std::uint64_t> ids;
  for (const auto& u : updates) ids.push_back(u.id.value());
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST(MultiUpdateStreamTest, OffsetsPartitionTheCoverage) {
  sim::Simulator sim;
  std::vector<db::Update> updates;
  std::vector<MultiUpdateStream::Feed> feeds;
  // Feed A covers low [0,10), feed B covers low [10,20).
  feeds.push_back({FeedParams(100, 10, 5), 0, 0});
  feeds.push_back({FeedParams(100, 10, 5), 10, 5});
  MultiUpdateStream multi(&sim, feeds, base::RngSeed(7),
                          [&](const db::Update& u) { updates.push_back(u); });
  sim.RunUntil(20.0);
  bool saw_first_window = false;
  bool saw_second_window = false;
  for (const auto& u : updates) {
    if (u.object.cls == db::ObjectClass::kLowImportance) {
      EXPECT_GE(u.object.index, 0);
      EXPECT_LT(u.object.index, 20);
      if (u.object.index < 10) saw_first_window = true;
      if (u.object.index >= 10) saw_second_window = true;
    } else {
      EXPECT_LT(u.object.index, 10);
    }
  }
  EXPECT_TRUE(saw_first_window);
  EXPECT_TRUE(saw_second_window);
}

TEST(MultiUpdateStreamTest, StopSilencesEveryFeed) {
  sim::Simulator sim;
  int count = 0;
  std::vector<MultiUpdateStream::Feed> feeds;
  feeds.push_back({FeedParams(100, 10, 10), 0, 0});
  feeds.push_back({FeedParams(100, 10, 10), 0, 0});
  MultiUpdateStream multi(&sim, feeds, base::RngSeed(7),
                          [&](const db::Update&) { ++count; });
  sim.RunUntil(1.0);
  const int at_stop = count;
  multi.Stop();
  sim.RunUntil(10.0);
  EXPECT_EQ(count, at_stop);
}

// Feeds with different network delays driving a real System: the slow
// feed's slice of the database is measurably staler.
TEST(MultiUpdateStreamTest, HeterogeneousFeedsDriveASystem) {
  core::Config config;
  config.external_workload = true;
  config.policy = core::PolicyKind::kUpdateFirst;
  config.sim_seconds = 60.0;
  config.n_low = 200;
  config.n_high = 200;
  config.alpha = 2.0;

  sim::Simulator sim;
  core::System system(&sim, config, base::RngSeed(1));

  std::vector<MultiUpdateStream::Feed> feeds;
  // Fast feed: low [0,100), 100/s, 10 ms delivery.
  UpdateStream::Params fast = FeedParams(100, 100, 1);
  fast.p_low = 1.0;
  fast.mean_age = 0.01;
  feeds.push_back({fast, 0, 0});
  // Slow feed: low [100,200), 100/s, 1.2 s delivery (vs alpha = 2 s).
  UpdateStream::Params slow = FeedParams(100, 100, 1);
  slow.p_low = 1.0;
  slow.mean_age = 1.2;
  feeds.push_back({slow, 100, 0});

  MultiUpdateStream multi(
      &sim, feeds, base::RngSeed(7),
      [&](const db::Update& u) { system.InjectUpdate(u); });
  system.Run();

  // Sample staleness of both windows at the end of the run.
  int stale_fast = 0;
  int stale_slow = 0;
  for (int i = 0; i < 100; ++i) {
    if (system.staleness().IsStale({db::ObjectClass::kLowImportance, i})) {
      ++stale_fast;
    }
    if (system.staleness().IsStale(
            {db::ObjectClass::kLowImportance, 100 + i})) {
      ++stale_slow;
    }
  }
  EXPECT_GT(stale_slow, stale_fast);
}

TEST(MultiUpdateStreamDeathTest, NeedsAFeed) {
  sim::Simulator sim;
  EXPECT_DEATH(
      MultiUpdateStream(&sim, {}, base::RngSeed(7), [](const db::Update&) {}),
      "at least one feed");
}

}  // namespace
}  // namespace strip::workload
