#include "workload/update_stream.h"

#include <vector>

#include <gtest/gtest.h>

#include "sim/stats.h"

namespace strip::workload {
namespace {

std::vector<db::Update> Collect(const UpdateStream::Params& params,
                                double seconds, std::uint64_t seed = 7) {
  sim::Simulator sim;
  std::vector<db::Update> updates;
  UpdateStream stream(&sim, params, base::RngSeed(seed),
                      [&](const db::Update& u) { updates.push_back(u); });
  sim.RunUntil(seconds);
  return updates;
}

TEST(UpdateStreamTest, RateMatchesLambda) {
  UpdateStream::Params params;
  params.arrival_rate = 400;
  const auto updates = Collect(params, 50.0);
  // 20000 expected; Poisson sd ~141.
  EXPECT_NEAR(static_cast<double>(updates.size()), 20000, 600);
}

TEST(UpdateStreamTest, ArrivalTimesAreMonotoneAndStamped) {
  UpdateStream::Params params;
  const auto updates = Collect(params, 5.0);
  ASSERT_FALSE(updates.empty());
  for (std::size_t i = 1; i < updates.size(); ++i) {
    EXPECT_GE(updates[i].arrival_time, updates[i - 1].arrival_time);
  }
  EXPECT_GT(updates.front().arrival_time, 0.0);
  EXPECT_LE(updates.back().arrival_time, 5.0);
}

TEST(UpdateStreamTest, IdsAreUniqueAndSequential) {
  UpdateStream::Params params;
  const auto updates = Collect(params, 2.0);
  for (std::size_t i = 0; i < updates.size(); ++i) {
    EXPECT_EQ(updates[i].id.value(), i + 1);
  }
}

TEST(UpdateStreamTest, ClassSplitMatchesPLow) {
  UpdateStream::Params params;
  params.p_low = 0.25;
  const auto updates = Collect(params, 100.0);
  int low = 0;
  for (const auto& u : updates) {
    if (u.object.cls == db::ObjectClass::kLowImportance) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low) / static_cast<double>(updates.size()), 0.25, 0.02);
}

TEST(UpdateStreamTest, ObjectIndicesStayInRange) {
  UpdateStream::Params params;
  params.n_low = 17;
  params.n_high = 5;
  const auto updates = Collect(params, 20.0);
  for (const auto& u : updates) {
    const int n =
        u.object.cls == db::ObjectClass::kLowImportance ? 17 : 5;
    EXPECT_GE(u.object.index, 0);
    EXPECT_LT(u.object.index, n);
  }
}

TEST(UpdateStreamTest, GenerationLagsArrivalByMeanAge) {
  UpdateStream::Params params;
  params.mean_age = 0.1;
  const auto updates = Collect(params, 100.0);
  sim::Accumulator ages;
  for (const auto& u : updates) {
    EXPECT_LE(u.generation_time, u.arrival_time);
    EXPECT_GE(u.generation_time, 0.0);  // clamped at the start of time
    if (u.arrival_time > 1.0) {  // past the clamp-affected prefix
      ages.Add(u.arrival_time - u.generation_time);
    }
  }
  EXPECT_NEAR(ages.mean(), 0.1, 0.01);
}

TEST(UpdateStreamTest, DeterministicBySeed) {
  UpdateStream::Params params;
  const auto a = Collect(params, 5.0, 42);
  const auto b = Collect(params, 5.0, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival_time, b[i].arrival_time);
    EXPECT_EQ(a[i].object, b[i].object);
  }
  const auto c = Collect(params, 5.0, 43);
  EXPECT_NE(a.front().arrival_time, c.front().arrival_time);
}

TEST(UpdateStreamTest, StopHaltsGeneration) {
  sim::Simulator sim;
  int count = 0;
  UpdateStream::Params params;
  UpdateStream stream(&sim, params, base::RngSeed(7),
                      [&](const db::Update&) { ++count; });
  sim.RunUntil(1.0);
  const int at_stop = count;
  EXPECT_GT(at_stop, 0);
  stream.Stop();
  sim.RunUntil(5.0);
  EXPECT_EQ(count, at_stop);
  EXPECT_EQ(stream.generated(), static_cast<std::uint64_t>(at_stop));
}

TEST(UpdateStreamTest, PeriodicModeRefreshesRoundRobin) {
  UpdateStream::Params params;
  params.periodic = true;
  params.arrival_rate = 100;
  params.n_low = 3;
  params.n_high = 2;
  const auto updates = Collect(params, 1.0);  // ~100 updates, 20 cycles
  ASSERT_GE(updates.size(), 10u);
  // Deterministic rotation low0 low1 low2 high0 high1 ...
  EXPECT_EQ(updates[0].object,
            (db::ObjectId{db::ObjectClass::kLowImportance, 0}));
  EXPECT_EQ(updates[3].object,
            (db::ObjectId{db::ObjectClass::kHighImportance, 0}));
  EXPECT_EQ(updates[5].object,
            (db::ObjectId{db::ObjectClass::kLowImportance, 0}));
  // Fixed interarrival gap.
  EXPECT_NEAR(updates[1].arrival_time - updates[0].arrival_time, 0.01,
              1e-12);
}

TEST(UpdateStreamTest, RateFactorScalesThroughput) {
  sim::Simulator sim;
  UpdateStream::Params params;
  params.arrival_rate = 400;
  int count = 0;
  UpdateStream stream(&sim, params, base::RngSeed(7),
                      [&](const db::Update&) { ++count; });
  sim.RunUntil(20.0);
  const int base = count;
  EXPECT_NEAR(static_cast<double>(base), 8000, 400);
  // Triple the rate for 20 s, then restore.
  stream.SetRateFactor(3.0);
  EXPECT_DOUBLE_EQ(stream.rate_factor(), 3.0);
  sim.RunUntil(40.0);
  const int boosted = count - base;
  EXPECT_NEAR(static_cast<double>(boosted), 24000, 1200);
  stream.SetRateFactor(1.0);
  sim.RunUntil(60.0);
  const int restored = count - base - boosted;
  EXPECT_NEAR(static_cast<double>(restored), 8000, 400);
}

TEST(UpdateStreamTest, UnitRateFactorIsANoOpForDeterminism) {
  // Re-setting factor = 1 must not perturb the arrival sequence (no
  // RNG draw, no gap redraw): the no-fault path through the fault
  // layer stays bit-identical to a stream never touched at all.
  UpdateStream::Params params;
  params.arrival_rate = 400;
  sim::Simulator sim_a, sim_b;
  std::vector<double> a, b;
  UpdateStream sa(&sim_a, params, base::RngSeed(7),
                  [&](const db::Update& u) { a.push_back(u.arrival_time); });
  UpdateStream sb(&sim_b, params, base::RngSeed(7),
                  [&](const db::Update& u) { b.push_back(u.arrival_time); });
  sim_a.RunUntil(5.0);
  sa.SetRateFactor(1.0);  // already 1.0 — must be a pure no-op
  sim_a.RunUntil(10.0);
  sim_b.RunUntil(10.0);
  EXPECT_EQ(a, b);
}

TEST(UpdateStreamDeathTest, InvalidParams) {
  sim::Simulator sim;
  UpdateStream::Params params;
  params.arrival_rate = 0;
  EXPECT_DEATH(
      UpdateStream(&sim, params, base::RngSeed(7), [](const db::Update&) {}),
      "positive");
}

}  // namespace
}  // namespace strip::workload
