// Cluster shapes: sweep the cluster itself, not just the workload.
//
// Two grids built on SweepSpec::apply_x_cluster (the cluster-scoped x
// axis added with the interconnect model):
//
//   1. shards x policy       - how does splitting one engine's load
//      across M shards change availability and tail response, once
//      cross-shard reads have to cross a real (non-zero latency,
//      slightly lossy) fabric?
//   2. link_latency_us x policy at a fixed 4-shard shape - how much
//      interconnect delay can the schedulers absorb before remote
//      reads start blowing transaction deadlines?
//
// Both grids give every remote read a timeout/retry budget and the
// stale-local degraded fallback, so a lost message costs a retry
// rather than a stuck transaction. The same grids run from the shell:
//
//   strip_sweep --x=shards --values=1,2,4,8 --link_latency_us=200 ...
//   strip_sweep --shards=4 --x=link_latency_us --values=0,200,1000,5000 ...
//
//   $ ./cluster_shapes [--seconds=S] [--reps=N]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "core/config.h"
#include "core/metrics.h"
#include "core/sharded_config.h"
#include "exp/experiment.h"

namespace {

using strip::core::PolicyKind;
using strip::core::RunMetrics;

void PrintGrid(const char* title, const char* x_label,
               const strip::exp::SweepSpec& spec,
               const strip::exp::SweepResult& result,
               const strip::exp::MetricFn& metric) {
  std::printf("\n%s\n%16s", title, x_label);
  for (PolicyKind policy : spec.policies) {
    std::printf(" %10s", strip::core::PolicyKindName(policy));
  }
  std::printf("\n");
  for (std::size_t x = 0; x < spec.x_values.size(); ++x) {
    std::printf("%16g", spec.x_values[x]);
    for (std::size_t p = 0; p < spec.policies.size(); ++p) {
      std::printf(" %10.3f", result.Mean(p, x, metric));
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  double seconds = 30.0;
  int reps = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seconds=", 10) == 0) {
      seconds = std::atof(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = std::atoi(argv[i] + 7);
    }
  }

  // One shared workload and one shared (imperfect) interconnect: a
  // 200us one-way hop with 50us of jitter and a 0.5% loss rate, and a
  // remote-read budget of two 20ms timeouts before the home shard
  // degrades to its stale local replica.
  strip::exp::SweepSpec spec;
  spec.base.sim_seconds = seconds;
  spec.base.remote_timeout_s = 0.02;
  spec.base.remote_retry_max = 2;
  spec.base.remote_fallback = strip::core::RemoteFallback::kStale;
  spec.policies = {PolicyKind::kUpdateFirst, PolicyKind::kOnDemand};
  spec.replications = reps;
  spec.cluster.link_latency_us = 200.0;
  spec.cluster.link_jitter_us = 50.0;
  spec.cluster.link_loss_p = 0.005;

  // Grid 1: the shard count is the x axis. apply_x_cluster edits the
  // cluster shape per cell; shards == 1 cells still run the Cluster
  // path, byte-identical to a bare System run.
  spec.x_name = "shards";
  spec.x_values = {1, 2, 4, 8};
  spec.apply_x_cluster = [](strip::core::ShardedConfig& config, double x) {
    config.shards = static_cast<int>(x);
  };
  strip::exp::SweepResult by_shards = strip::exp::RunSweep(spec);
  PrintGrid("availability (txns committed / s) vs cluster size",
            "shards", spec, by_shards,
            strip::exp::Metric(&RunMetrics::av));
  PrintGrid("p95 response (s) vs cluster size", "shards", spec, by_shards,
            strip::exp::Metric(&RunMetrics::response_p95));

  // Grid 2: fix the shape at 4 shards and sweep the fabric's one-way
  // latency from free to painful (5ms each way on a 20ms timeout).
  spec.cluster.shards = 4;
  spec.x_name = "link_latency_us";
  spec.x_values = {0, 200, 1000, 5000};
  spec.apply_x_cluster = [](strip::core::ShardedConfig& config, double x) {
    config.link_latency_us = x;
  };
  strip::exp::SweepResult by_latency = strip::exp::RunSweep(spec);
  PrintGrid("availability vs link latency (4 shards)", "latency_us",
            spec, by_latency, strip::exp::Metric(&RunMetrics::av));
  PrintGrid("p95 response (s) vs link latency (4 shards)", "latency_us",
            spec, by_latency,
            strip::exp::Metric(&RunMetrics::response_p95));
  PrintGrid("remote retries vs link latency (4 shards)", "latency_us",
            spec, by_latency,
            strip::exp::Metric(&RunMetrics::remote_retries));
  return 0;
}
