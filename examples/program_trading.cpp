// Program trading: the paper's motivating application (Section 1).
//
// A trading desk tracks a universe of financial instruments fed by a
// market-data stream (hundreds of updates per second at peak). Trading
// transactions compare prices and fire trades; a trade decided on
// out-of-date prices is dangerous, so transactions abort when they
// read stale data (the Section 6.2 scenario). Missing a deadline means
// a missed opportunity; the transaction's value is the profit at
// stake.
//
// This example sizes the workload like the paper's baseline, sweeps
// the market-data rate from quiet to peak, and shows why the desk
// should deploy On Demand scheduling: it keeps earning through the
// data storm while Update First drowns in installs and Transaction
// First aborts on stale prices.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/config.h"
#include "core/system.h"
#include "db/general_store.h"
#include "sim/simulator.h"

namespace {

strip::core::RunMetrics RunDesk(strip::core::PolicyKind policy,
                                double updates_per_second,
                                double seconds) {
  strip::core::Config config;  // paper baseline: Tables 1-3
  config.policy = policy;
  config.lambda_u = updates_per_second;
  config.abort_on_stale = true;  // never trade on stale prices
  config.sim_seconds = seconds;
  // High-value transactions are arbitrage opportunities worth about
  // twice the routine rebalancing transactions.
  config.v_high_mean = 2.0;
  config.v_low_mean = 1.0;

  strip::sim::Simulator simulator;
  strip::core::System system(&simulator, config, strip::base::RngSeed(/*seed=*/2024));
  return system.Run();
}

}  // namespace

int main(int argc, char** argv) {
  double seconds = 100.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seconds=", 10) == 0) {
      seconds = std::atof(argv[i] + 10);
    }
  }

  std::printf("Program trading desk: 1000 instruments, firm-deadline\n");
  std::printf("trades, abort on stale prices. Sweeping the market feed.\n\n");

  // The desk's book lives in general data — transactions maintain it;
  // it never goes stale (Section 3.2).
  strip::db::GeneralStore book;
  book.Put("cash_usd", 10'000'000.0);
  book.Put("position:DEM", 0.0);
  book.Put("position:JPY", 0.0);
  std::printf("Desk book initialized with %zu entries "
              "(general data, maintained by transactions).\n\n",
              book.size());

  const strip::core::PolicyKind policies[] = {
      strip::core::PolicyKind::kUpdateFirst,
      strip::core::PolicyKind::kTransactionFirst,
      strip::core::PolicyKind::kOnDemand,
  };

  for (double feed : {100.0, 400.0, 550.0}) {
    std::printf("--- market feed at %.0f updates/s ---\n", feed);
    std::printf("%-6s %12s %12s %14s %14s\n", "policy", "profit/s",
                "p_success", "stale aborts", "missed trades");
    for (strip::core::PolicyKind policy : policies) {
      const strip::core::RunMetrics m = RunDesk(policy, feed, seconds);
      std::printf("%-6s %12.2f %12.3f %14llu %14llu\n",
                  strip::core::PolicyKindName(policy), m.av(),
                  m.p_success(),
                  (unsigned long long)m.txns_stale_aborted,
                  (unsigned long long)(m.txns_missed_deadline +
                                       m.txns_infeasible));
    }
    std::printf("\n");
  }

  std::printf(
      "Reading the table: On Demand keeps profit flat as the feed\n"
      "intensifies because it refreshes exactly the prices trades\n"
      "touch; Update First burns CPU installing quotes nobody reads;\n"
      "Transaction First lets the book go stale and aborts trades.\n");
  return 0;
}
