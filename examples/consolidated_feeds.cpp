// Consolidated market feeds: several providers, one database.
//
// The paper notes that update streams come from "several commercial
// companies such as Reuters" (Section 1). This example wires three
// heterogeneous feeds into one system through MultiUpdateStream:
//
//   - a premium low-latency domestic feed (fast delivery, high rate)
//     covering the high-importance partition,
//   - a consolidated domestic tape (slower, cheaper) covering half the
//     low-importance partition,
//   - an international feed with long transit delays covering the
//     other half.
//
// After the run it reports per-slice staleness: with one scheduler and
// one alpha, the slice behind the slow feed is the stale one — data
// timeliness is a property of the *feed*, not just the scheduler.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/config.h"
#include "core/system.h"
#include "sim/simulator.h"
#include "workload/multi_stream.h"
#include "workload/txn_source.h"

namespace {

double StaleFraction(const strip::core::System& system,
                     strip::db::ObjectClass cls, int begin, int end) {
  int stale = 0;
  for (int i = begin; i < end; ++i) {
    if (system.staleness().IsStale({cls, i})) ++stale;
  }
  return static_cast<double>(stale) / (end - begin);
}

}  // namespace

int main(int argc, char** argv) {
  double seconds = 100.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seconds=", 10) == 0) {
      seconds = std::atof(argv[i] + 10);
    }
  }

  strip::core::Config config;
  config.external_workload = true;  // feeds are wired manually below
  // Update First, so every delivered update is installed at once and
  // the staleness differences below are purely the feeds' doing.
  config.policy = strip::core::PolicyKind::kUpdateFirst;
  config.sim_seconds = seconds;
  config.alpha = 5.0;

  strip::sim::Simulator simulator;
  strip::core::System system(&simulator, config, strip::base::RngSeed(/*seed=*/8));

  std::vector<strip::workload::MultiUpdateStream::Feed> feeds;
  {
    // Premium feed: 200/s, 20 ms transit, the whole high partition.
    strip::workload::UpdateStream::Params premium;
    premium.arrival_rate = 200;
    premium.p_low = 0.0;
    premium.mean_age = 0.02;
    premium.n_low = 1;
    premium.n_high = config.n_high;
    feeds.push_back({premium, 0, 0});
  }
  {
    // Consolidated tape: 150/s, 300 ms transit, low objects [0, 250).
    strip::workload::UpdateStream::Params tape;
    tape.arrival_rate = 150;
    tape.p_low = 1.0;
    tape.mean_age = 0.3;
    tape.n_low = 250;
    tape.n_high = 1;
    feeds.push_back({tape, 0, 0});
  }
  {
    // International feed: 50/s, 2 s transit, low objects [250, 500).
    strip::workload::UpdateStream::Params intl;
    intl.arrival_rate = 50;
    intl.p_low = 1.0;
    intl.mean_age = 2.0;
    intl.n_low = 250;
    intl.n_high = 1;
    feeds.push_back({intl, 250, 0});
  }

  strip::workload::MultiUpdateStream consolidation(
      &simulator, feeds, strip::base::RngSeed(8),
      [&](const strip::db::Update& u) { system.InjectUpdate(u); });

  // Transactions still arrive stochastically — a plain TxnSource can
  // feed an external-workload System directly.
  strip::workload::TxnSource transactions(
      &simulator, config.TxnSourceParams(), strip::base::RngSeed(9),
      [&](const strip::txn::Transaction::Params& p) {
        system.InjectTransaction(p);
      });

  const strip::core::RunMetrics m = system.Run();

  std::printf("Consolidated feeds: %zu providers, %llu updates merged.\n\n",
              consolidation.feed_count(),
              (unsigned long long)consolidation.generated());
  std::printf("%-38s %10s\n", "slice (feed)", "stale now");
  std::printf("%-38s %10.3f\n", "high partition (premium, 20 ms)",
              StaleFraction(system, strip::db::ObjectClass::kHighImportance,
                            0, config.n_high));
  std::printf("%-38s %10.3f\n", "low [0,250) (tape, 300 ms)",
              StaleFraction(system, strip::db::ObjectClass::kLowImportance,
                            0, 250));
  std::printf("%-38s %10.3f\n", "low [250,500) (international, 2 s)",
              StaleFraction(system, strip::db::ObjectClass::kLowImportance,
                            250, 500));
  std::printf("\nrun metrics: p_MD=%.3f p_success=%.3f AV=%.2f "
              "rho_u=%.3f\n",
              m.p_md(), m.p_success(), m.av(), m.rho_u());
  std::printf(
      "\nReading the table: the scheduler installs every delivered\n"
      "update immediately, yet the international slice is far staler —\n"
      "its 2 s transit eats much of the 5 s age budget and its\n"
      "per-object refresh period (5 s) leaves long gaps. Feed\n"
      "engineering and scheduling are separate levers on data\n"
      "timeliness.\n");
  return 0;
}
