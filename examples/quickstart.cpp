// Quickstart: run the paper's baseline workload under each scheduling
// policy and print the headline metrics.
//
// This is the smallest complete use of the library: build a Config
// (the defaults are the paper's Tables 1-3 baseline), pick a policy,
// run, and read the metrics.
//
//   $ ./quickstart [--seconds=S]

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/config.h"
#include "core/metrics.h"
#include "core/system.h"
#include "sim/simulator.h"

int main(int argc, char** argv) {
  double seconds = 100.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seconds=", 10) == 0) {
      seconds = std::atof(argv[i] + 10);
    }
  }

  std::printf("STRIP update-stream scheduling — paper baseline, %.0f s\n\n",
              seconds);

  const strip::core::PolicyKind policies[] = {
      strip::core::PolicyKind::kUpdateFirst,
      strip::core::PolicyKind::kTransactionFirst,
      strip::core::PolicyKind::kSplitUpdates,
      strip::core::PolicyKind::kOnDemand,
  };

  std::printf("%-6s %8s %8s %8s %8s %8s %8s %8s\n", "policy", "p_MD", "AV",
              "p_succ", "f_old_l", "f_old_h", "rho_t", "rho_u");
  for (strip::core::PolicyKind policy : policies) {
    strip::core::Config config;  // paper baseline
    config.policy = policy;
    config.sim_seconds = seconds;

    strip::sim::Simulator simulator;
    strip::core::System system(&simulator, config, strip::base::RngSeed(/*seed=*/1));
    const strip::core::RunMetrics m = system.Run();

    std::printf("%-6s %8.3f %8.2f %8.3f %8.3f %8.3f %8.3f %8.3f\n",
                strip::core::PolicyKindName(policy), m.p_md(), m.av(),
                m.p_success(), m.f_old_low, m.f_old_high, m.rho_t(),
                m.rho_u());
  }
  return 0;
}
