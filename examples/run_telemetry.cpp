// Observability: watch a run from the outside.
//
// Three observers share one System through its ObserverBus:
//   1. an inline alerting observer that fires on stale reads,
//   2. a PeriodicSampler producing a mid-run time series,
//   3. a RunTelemetry recorder that exports the whole run as JSON.
//
// The bus replaces the old single-observer slot: each tool attaches
// independently and none of them knows the others exist. With no
// observers attached the simulation core pays only an emptiness check,
// so instrumented and bare runs follow the identical event timeline.
//
//   $ ./run_telemetry [--seconds=S] [--out=telemetry.json]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "core/config.h"
#include "core/observer_bus.h"
#include "core/system.h"
#include "obs/sampler.h"
#include "obs/telemetry.h"
#include "sim/simulator.h"

namespace {

// A control-room style monitor: count stale reads and shout about the
// first few as they happen.
class StaleReadAlert : public strip::core::SystemObserver {
 public:
  void OnStaleRead(strip::sim::Time now,
                   const strip::txn::Transaction& transaction,
                   strip::db::ObjectId object) override {
    ++stale_reads_;
    if (stale_reads_ <= 3) {
      std::printf("  [alert] t=%8.3f txn %llu read stale %s[%d]\n", now,
                  static_cast<unsigned long long>(transaction.id().value()),
                  object.cls == strip::db::ObjectClass::kHighImportance
                      ? "high"
                      : "low",
                  object.index);
    }
  }

  std::uint64_t stale_reads() const { return stale_reads_; }

 private:
  std::uint64_t stale_reads_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  double seconds = 60.0;
  std::string out_path = "telemetry.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seconds=", 10) == 0) {
      seconds = std::atof(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }

  strip::core::Config config;  // paper baseline
  config.policy = strip::core::PolicyKind::kTransactionFirst;
  config.sim_seconds = seconds;

  strip::sim::Simulator simulator;
  strip::core::System system(&simulator, config, strip::base::RngSeed(/*seed=*/1));

  // Observer 1: alerting, attached with RAII registration.
  StaleReadAlert alert;
  strip::core::ScopedObserver scoped_alert(&system.observer_bus(), &alert);

  // Observers 2+3: the telemetry recorder (which carries its own
  // sampler) attaches in its constructor, detaches in its destructor.
  strip::obs::RunTelemetry::Options options;
  options.sample_interval = 5.0;
  options.seed = 1;
  strip::obs::RunTelemetry telemetry(&system, options);

  std::printf("running %s for %.0f simulated seconds...\n",
              strip::core::PolicyKindName(config.policy), seconds);
  const strip::core::RunMetrics metrics = system.Run();

  std::printf("\n%llu stale reads total; committed %llu of %llu "
              "transactions (AV %.2f /s)\n",
              static_cast<unsigned long long>(alert.stale_reads()),
              static_cast<unsigned long long>(metrics.txns_committed),
              static_cast<unsigned long long>(metrics.txns_arrived),
              metrics.av());

  std::printf("\ntime series (every %.0f s):\n", options.sample_interval);
  std::printf("%8s %10s %10s %8s %8s\n", "t", "uq_depth", "ready_q",
              "f_old_l", "cpu_txn");
  for (const strip::obs::PeriodicSampler::Sample& s :
       telemetry.sampler().samples()) {
    std::printf("%8.1f %10llu %10llu %8.3f %8.3f\n", s.time,
                static_cast<unsigned long long>(s.uq_depth),
                static_cast<unsigned long long>(s.ready_queue),
                s.f_stale_low, s.cpu_share_txn);
  }

  std::printf("\nlatency percentiles (s): response p50=%.4f p99=%.4f, "
              "update age at install p50=%.4f p99=%.4f\n",
              telemetry.response_seconds().Quantile(0.5),
              telemetry.response_seconds().Quantile(0.99),
              telemetry.update_age_at_install_seconds().Quantile(0.5),
              telemetry.update_age_at_install_seconds().Quantile(0.99));

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  telemetry.WriteJson(out, metrics);
  std::printf("\nfull telemetry written to %s (schema %s)\n",
              out_path.c_str(), strip::obs::kTelemetrySchema);
  return 0;
}
