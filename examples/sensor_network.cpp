// Industrial plant control: the paper's sensor scenario (Section 2).
//
// Sensors report periodically, so the Maximum Age criterion is the
// natural staleness definition: a reading that hasn't been refreshed
// within alpha is suspect regardless of whether it "changed". Control
// transactions must run even on stale data — better to act on old
// readings with a red light in the control room than to do nothing —
// so stale reads complete with a warning (no aborts; Section 2's
// second option).
//
// The example contrasts the Poisson update pattern with the periodic
// sensor pattern (a paper future-work item implemented as an
// extension), and shows the fixed-CPU-fraction scheduler keeping
// readings fresh without starving the control loop.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/config.h"
#include "core/system.h"
#include "sim/simulator.h"

namespace {

struct PlantResult {
  strip::core::RunMetrics metrics;
  const char* label;
};

strip::core::RunMetrics RunPlant(strip::core::PolicyKind policy,
                                 bool periodic_sensors, double seconds,
                                 double updater_share = 0.2) {
  strip::core::Config config;
  config.policy = policy;
  config.update_cpu_fraction = updater_share;
  config.periodic_updates = periodic_sensors;
  config.abort_on_stale = false;  // run anyway, raise the red light
  config.staleness = strip::db::StalenessCriterion::kMaxAge;
  // Plant sizing: 800 sensor points, 2 Hz reporting each -> 1600/s
  // aggregate would swamp a 50 MIPS controller; the paper-scale 400/s
  // (every sensor every 2 s) fits.
  config.n_low = 400;   // secondary loops
  config.n_high = 400;  // safety-critical loops
  config.lambda_u = 400;
  config.alpha = 5.0;  // a reading older than 5 s is suspect
  config.lambda_t = 12;
  config.sim_seconds = seconds;

  strip::sim::Simulator simulator;
  strip::core::System system(&simulator, config, strip::base::RngSeed(/*seed=*/11));
  return system.Run();
}

void PrintRow(const PlantResult& r) {
  const strip::core::RunMetrics& m = r.metrics;
  // "Red lights": control actions that ran on suspect data.
  const double red_light_rate =
      m.txns_committed == 0
          ? 0.0
          : static_cast<double>(m.txns_committed_stale) /
                static_cast<double>(m.txns_committed);
  std::printf("%-28s %10.3f %10.3f %12.3f %12.3f\n", r.label, m.f_old_high,
              m.f_old_low, red_light_rate, m.p_md());
}

}  // namespace

int main(int argc, char** argv) {
  double seconds = 100.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seconds=", 10) == 0) {
      seconds = std::atof(argv[i] + 10);
    }
  }

  std::printf("Plant control: 800 sensor points, alpha = 5 s, control\n");
  std::printf("transactions complete on stale data but raise a red "
              "light.\n\n");
  std::printf("%-28s %10s %10s %12s %12s\n", "configuration", "f_old_h",
              "f_old_l", "red-lights", "p_MD");

  PrintRow({RunPlant(strip::core::PolicyKind::kTransactionFirst, false,
                     seconds),
            "TF, bursty sensors"});
  PrintRow({RunPlant(strip::core::PolicyKind::kTransactionFirst, true,
                     seconds),
            "TF, periodic sensors"});
  PrintRow({RunPlant(strip::core::PolicyKind::kSplitUpdates, true, seconds),
            "SU, periodic sensors"});
  PrintRow({RunPlant(strip::core::PolicyKind::kFixedFraction, true, seconds,
                     0.2),
            "FCF 20% share, periodic"});
  PrintRow({RunPlant(strip::core::PolicyKind::kFixedFraction, true, seconds,
                     0.1),
            "FCF 10% share, periodic"});
  PrintRow({RunPlant(strip::core::PolicyKind::kUpdateFirst, true, seconds),
            "UF, periodic sensors"});

  std::printf(
      "\nReading the table: periodic reporting removes the random\n"
      "refresh gaps that leave a staleness floor under Poisson\n"
      "arrivals. Reserving a fixed CPU share for installs keeps every\n"
      "loop fresh at a bounded deadline cost — the compromise the\n"
      "paper's future-work section anticipates — while TF lets\n"
      "secondary loops run on suspect readings.\n");
  return 0;
}
