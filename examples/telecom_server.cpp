// Telecommunications RTDB server: the paper's UU scenario (Section 2).
//
// A switch's database tracks call and subscriber state. Delivery of
// state updates is fast and reliable, and nobody wants periodic "the
// call is still going on" traffic, so the Unapplied Update criterion
// fits: data is fresh unless a newer update sits unapplied in the
// queue. Service requests (call setup, routing decisions) are the
// transactions; under UU, On Demand must search the queue on every
// read, which is exactly the trade this example measures, with and
// without the hash index on the update queue (the Section 4 extension).

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/config.h"
#include "core/system.h"
#include "sim/simulator.h"

namespace {

strip::core::Config SwitchConfig(double seconds) {
  strip::core::Config config;
  config.staleness = strip::db::StalenessCriterion::kUnappliedUpdate;
  config.abort_on_stale = false;
  // State churn: 400 updates/s across 1000 subscriber/call records.
  config.lambda_u = 400;
  // Service requests: 8/s with tight slacks (callers hear the delay).
  config.lambda_t = 8;
  config.s_min = 0.05;
  config.s_max = 0.5;
  config.sim_seconds = seconds;
  return config;
}

void Report(const char* label, const strip::core::RunMetrics& m) {
  std::printf("%-26s %10.3f %10.3f %12.3f %14llu\n", label, m.p_success(),
              m.p_md(), m.f_old_low,
              (unsigned long long)m.updates_applied_on_demand);
}

}  // namespace

int main(int argc, char** argv) {
  double seconds = 100.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seconds=", 10) == 0) {
      seconds = std::atof(argv[i] + 10);
    }
  }

  std::printf("Telecom switch: call-state database under the Unapplied\n");
  std::printf("Update criterion, 400 state changes/s, 8 service req/s.\n\n");
  std::printf("%-26s %10s %10s %12s %14s\n", "configuration", "p_success",
              "p_MD", "f_old_l", "od installs");

  {
    strip::core::Config config = SwitchConfig(seconds);
    config.policy = strip::core::PolicyKind::kTransactionFirst;
    strip::sim::Simulator simulator;
    strip::core::System system(&simulator, config, strip::base::RngSeed(5));
    Report("TF (requests first)", system.Run());
  }
  {
    strip::core::Config config = SwitchConfig(seconds);
    config.policy = strip::core::PolicyKind::kUpdateFirst;
    strip::sim::Simulator simulator;
    strip::core::System system(&simulator, config, strip::base::RngSeed(5));
    Report("UF (state first)", system.Run());
  }
  {
    // Under UU, OD pays a queue scan on *every* read — the only way to
    // detect staleness. First the paper's plain scanned queue...
    strip::core::Config config = SwitchConfig(seconds);
    config.policy = strip::core::PolicyKind::kOnDemand;
    config.x_scan = 500;  // realistic per-entry examination cost
    strip::sim::Simulator simulator;
    strip::core::System system(&simulator, config, strip::base::RngSeed(5));
    Report("OD, scanned queue", system.Run());
  }
  {
    // ...then with the hash index on the update queue, which turns the
    // per-read search into a constant-cost probe.
    strip::core::Config config = SwitchConfig(seconds);
    config.policy = strip::core::PolicyKind::kOnDemand;
    config.x_scan = 500;
    config.indexed_update_queue = true;
    strip::sim::Simulator simulator;
    strip::core::System system(&simulator, config, strip::base::RngSeed(5));
    Report("OD, hash-indexed queue", system.Run());
  }

  std::printf(
      "\nReading the table: UF never lets call state go stale (there is\n"
      "no queue to leave updates unapplied in) but delays requests; OD\n"
      "answers requests fast with fresh state, and the hash index\n"
      "makes its per-read staleness check affordable — the structure\n"
      "the paper recommends building for exactly this workload.\n");
  return 0;
}
