// Portfolio monitoring: derived data, the edge of On Demand.
//
// The paper's conclusion (Section 7) ends on a caveat: OD works when
// the system can identify the queued updates that affect what a
// transaction reads. A portfolio average is the canonical hard case —
// it is derived from many stocks, so freshening it means finding and
// applying the queued update of *every* stale constituent.
//
// This example builds portfolios over the high-importance partition
// with db::DerivedRegistry, runs the market under each scheduling
// policy, samples portfolio staleness throughout the run (scheduling
// its own events alongside the System on the same simulator), and
// answers the OD question — how many queued updates it would take to
// freshen a stale portfolio right now.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "core/config.h"
#include "core/system.h"
#include "db/derived.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace {

struct SampleStats {
  int samples = 0;
  int stale_samples = 0;
  double freshening_updates_available = 0;
};

void RunMarket(strip::core::PolicyKind policy, double seconds) {
  strip::core::Config config;
  config.policy = policy;
  config.lambda_t = 12;
  config.sim_seconds = seconds;

  strip::sim::Simulator simulator;
  strip::core::System system(&simulator, config, strip::base::RngSeed(/*seed=*/21));

  // Twenty portfolios of ten stocks each from the high-importance
  // partition.
  strip::db::DerivedRegistry portfolios;
  strip::sim::RandomStream random(strip::base::RngSeed(99));
  for (int p = 0; p < 20; ++p) {
    strip::db::DerivedRegistry::Definition def;
    def.name = "portfolio-" + std::to_string(p);
    def.aggregation = strip::db::DerivedRegistry::Aggregation::kAverage;
    for (int s = 0; s < 10; ++s) {
      def.inputs.push_back({strip::db::ObjectClass::kHighImportance,
                            random.UniformInt(0, config.n_high - 1)});
    }
    portfolios.Define(def);
  }

  // Sample portfolio staleness twice a second, riding on the same
  // simulator the System runs on.
  SampleStats stats;
  std::function<void()> sample = [&] {
    for (int p = 0; p < portfolios.size(); ++p) {
      ++stats.samples;
      if (portfolios.IsStale(p, system.staleness())) {
        ++stats.stale_samples;
        stats.freshening_updates_available += static_cast<double>(
            portfolios
                .FresheningUpdates(p, system.database(),
                                   system.update_queue())
                .size());
      }
    }
    simulator.ScheduleAfter(0.5, sample);
  };
  simulator.ScheduleAfter(0.5, sample);

  const strip::core::RunMetrics m = system.Run();

  const double stale_fraction =
      stats.samples == 0
          ? 0.0
          : static_cast<double>(stats.stale_samples) / stats.samples;
  const double mean_freshening =
      stats.stale_samples == 0
          ? 0.0
          : stats.freshening_updates_available / stats.stale_samples;
  std::printf("%-6s %14.3f %16.2f %10.3f %10.2f\n",
              strip::core::PolicyKindName(policy), stale_fraction,
              mean_freshening, m.p_md(), m.av());
}

}  // namespace

int main(int argc, char** argv) {
  double seconds = 80.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seconds=", 10) == 0) {
      seconds = std::atof(argv[i] + 10);
    }
  }

  std::printf("Portfolio monitor: 20 portfolios x 10 stocks over the\n");
  std::printf("high-importance partition, sampled twice a second.\n\n");
  std::printf("%-6s %14s %16s %10s %10s\n", "policy", "stale-fraction",
              "avail-freshening", "p_MD", "AV");

  RunMarket(strip::core::PolicyKind::kUpdateFirst, seconds);
  RunMarket(strip::core::PolicyKind::kSplitUpdates, seconds);
  RunMarket(strip::core::PolicyKind::kTransactionFirst, seconds);
  RunMarket(strip::core::PolicyKind::kOnDemand, seconds);

  std::printf(
      "\nReading the table: a portfolio is stale whenever ANY of its ten\n"
      "stocks is stale, so derived data is far more fragile than single\n"
      "objects — only UF and SU (which keep the high partition fresh)\n"
      "protect it. Under TF/OD, 'avail-freshening' counts the queued\n"
      "updates that would repair a stale portfolio: the work per\n"
      "on-demand read that plain per-object OD cannot see, which is\n"
      "exactly why the paper bounds OD's applicability at derived\n"
      "data.\n");
  return 0;
}
